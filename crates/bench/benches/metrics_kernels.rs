//! Criterion benchmark of the ground-truth metric kernels (ISSUE E9):
//! wall-clock cost of the seed's brute-force `n`-sweep extremes vs the
//! pruned SumSweep computer, plus the raw SSSP workspace kernels on both
//! sides of the Dial/heap switchover.
//!
//! ```sh
//! cargo bench -p wdr-bench --bench metrics_kernels
//! cargo bench -p wdr-bench --bench metrics_kernels --features parallel
//! ```
//!
//! This bench times the raw kernels; the tables binary's E9 experiment
//! (`--exp e9`) additionally cross-checks every kernel's answers against
//! brute force and emits `BENCH_metrics_kernels.json`.

use congest_graph::sweep::{self, EdgeMetric};
use congest_graph::{generators, SsspWorkspace, WeightedGraph, DIAL_MAX_WEIGHT};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn er(n: usize, w: u64) -> WeightedGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(9900 + 17 * n as u64 + w);
    let p = (2.0 * (n as f64).ln() / n as f64).min(1.0);
    generators::erdos_renyi_connected(n, p, w, &mut rng)
}

fn bench_extremes(c: &mut Criterion) {
    for n in [128usize, 256, 512] {
        let g = er(n, 8);
        c.bench_function(&format!("metrics_kernels/brute/n={n}"), |b| {
            b.iter(|| sweep::brute_force_extremes(&g, EdgeMetric::Weighted))
        });
        c.bench_function(&format!("metrics_kernels/sumsweep/n={n}"), |b| {
            b.iter(|| sweep::extremes(&g))
        });
    }
}

fn bench_sssp_workspace(c: &mut Criterion) {
    // One graph per regime: W = 8 stays on the Dial bucket queue, a heavy
    // weight forces the binary heap; identical topology otherwise.
    let n = 512;
    for (name, w) in [("dial", 8), ("heap", 100 * DIAL_MAX_WEIGHT)] {
        let g = er(n, w);
        let mut ws = SsspWorkspace::new();
        ws.dijkstra_into(&g, 0); // warm the scratch buffers once
        let mut src = 0;
        c.bench_function(&format!("metrics_kernels/sssp/{name}/n={n}"), |b| {
            b.iter(|| {
                src = (src + 1) % g.n();
                ws.dijkstra_into(&g, src).last().copied()
            })
        });
    }
    let g = er(n, 1);
    let mut ws = SsspWorkspace::new();
    let mut src = 0;
    c.bench_function(&format!("metrics_kernels/bfs/n={n}"), |b| {
        b.iter(|| {
            src = (src + 1) % g.n();
            ws.bfs_into(&g, src).last().copied()
        })
    });
}

#[cfg(feature = "parallel")]
fn bench_parallel(c: &mut Criterion) {
    for n in [256usize, 512] {
        let g = er(n, 8);
        for threads in [2usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool builds");
            c.bench_function(
                &format!("metrics_kernels/parallel-brute/n={n}/threads={threads}"),
                |b| {
                    b.iter(|| {
                        pool.install(|| sweep::par_brute_force_extremes(&g, EdgeMetric::Weighted))
                    })
                },
            );
        }
    }
}

#[cfg(not(feature = "parallel"))]
fn bench_parallel(_c: &mut Criterion) {
    eprintln!("metrics_kernels: parallel rows skipped (build with --features parallel)");
}

criterion_group!(
    metrics_kernels,
    bench_extremes,
    bench_sssp_workspace,
    bench_parallel
);
criterion_main!(metrics_kernels);
