//! Criterion micro-benchmarks of the giant-graph I/O path: what does it
//! cost to *have* a graph? Three ways to the same CSR are compared at a
//! size where the differences are decades apart — streaming the generator
//! (compute-bound), reading the binary file into owned arrays
//! (bandwidth-bound), and `open_mmap` (O(header): parse 64 bytes, map the
//! payload, borrow the arrays in place). The E11 experiment gates the
//! mmap-vs-generate ratio end to end; these benches keep the per-layer
//! costs visible so a regression can be localized.

use congest_graph::generators::stream::StreamSpec;
use congest_graph::{GraphBuilder, WeightedGraph};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const N: usize = 50_000;
const SEED: u64 = 1107;

fn spec() -> StreamSpec {
    StreamSpec::PowerLaw {
        n: N,
        attach: 8,
        max_w: 16,
        seed: SEED,
    }
}

fn bench_file(dir: &std::path::Path) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).expect("create bench dir");
    let path = dir.join("giant_io.wdrg");
    if !path.exists() {
        spec()
            .build()
            .expect("stream build")
            .write_binary(&path)
            .expect("write bench graph");
    }
    path
}

/// The generator itself: two streaming passes through `GraphWriter`,
/// no intermediate edge list. This is the cost `open_mmap` amortizes away.
fn generate(c: &mut Criterion) {
    c.bench_function("giant_io_generate_n50k", |b| {
        b.iter(|| spec().build().expect("stream build"))
    });
}

/// Builder-path construction from a pre-collected edge list — the
/// non-streaming baseline (materializes `Vec<Edge>`, sorts, dedups).
fn construct(c: &mut Criterion) {
    let mut edges = Vec::new();
    spec().for_each_edge(&mut |u, v, w| edges.push((u, v, w)));
    c.bench_function("giant_io_builder_n50k", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::new(N);
            for &(u, v, w) in &edges {
                builder.add_edge(u, v, w);
            }
            builder.build().expect("builder build")
        })
    });
}

/// Full file read into owned arrays vs zero-copy mmap open of the same
/// bytes. The gap between these two is the payload copy; the gap to
/// `generate` is the whole point of the binary format.
fn open(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("wdrg-bench-io-{}", std::process::id()));
    let path = bench_file(&dir);
    c.bench_function("giant_io_read_owned_n50k", |b| {
        b.iter(|| {
            let bytes = std::fs::read(black_box(&path)).expect("read file");
            black_box(bytes.len())
        })
    });
    c.bench_function("giant_io_open_mmap_n50k", |b| {
        b.iter(|| WeightedGraph::open_mmap(black_box(&path)).expect("mmap open"))
    });
    // One touch of the mapped arrays per open, so the measured path can't
    // degenerate into mapping pages nobody faults in.
    c.bench_function("giant_io_open_mmap_and_degree_scan_n50k", |b| {
        b.iter(|| {
            let g = WeightedGraph::open_mmap(black_box(&path)).expect("mmap open");
            (0..g.n()).map(|v| g.degree(v)).max()
        })
    });
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, generate, construct, open);
criterion_main!(benches);
