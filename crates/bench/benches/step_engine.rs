//! Criterion benchmark of the round engine (ISSUE E8): wall-clock cost of
//! `Network::step` on dense gossip workloads, sequential vs (with
//! `--features parallel`) the parallel compute phase at several pool sizes.
//!
//! ```sh
//! cargo bench -p wdr-bench --bench step_engine
//! cargo bench -p wdr-bench --bench step_engine --features parallel
//! ```
//!
//! This bench times the raw engine; the tables binary's E8 experiment
//! (`--exp e8`) additionally cross-checks parallel outputs against the
//! sequential engine and emits `BENCH_step_engine.json`.

use congest_graph::{generators, NodeId, WeightedGraph};
use congest_sim::{run_phase, Bandwidth, Mailbox, NodeCtx, NodeProgram, SimConfig, Status};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const ROUNDS: usize = 40;
const WORK: u32 = 64;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct GossipMix {
    digest: u64,
}

impl NodeProgram for GossipMix {
    type Msg = u64;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
        self.digest = mix(ctx.id as u64 + 1);
        mb.broadcast(ctx, self.digest);
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(NodeId, u64)],
        mb: &mut Mailbox<u64>,
    ) -> Status {
        for &(_, d) in inbox {
            self.digest = mix(self.digest ^ d);
        }
        for _ in 0..WORK {
            self.digest = mix(self.digest);
        }
        if round < ROUNDS {
            mb.broadcast(ctx, self.digest);
            Status::Running
        } else {
            Status::Done
        }
    }

    fn finish(self, _ctx: &NodeCtx) -> u64 {
        self.digest
    }
}

fn dense(n: usize) -> WeightedGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(8800 + n as u64);
    generators::erdos_renyi_connected(n, 0.3, 1, &mut rng)
}

fn run_gossip(g: &WeightedGraph, config: &SimConfig) -> u64 {
    let (out, _) = run_phase(g, 0, config, "e8_gossip", |_, _| GossipMix { digest: 0 })
        .expect("gossip run succeeds");
    out.iter().fold(0, |acc, &d| mix(acc ^ d))
}

fn bench_sequential(c: &mut Criterion) {
    for n in [48usize, 96, 192] {
        let g = dense(n);
        let config = SimConfig {
            bandwidth: Bandwidth::bits(160),
            ..SimConfig::standard(g.n(), 1)
        };
        c.bench_function(&format!("step_engine/sequential/n={n}"), |b| {
            b.iter(|| run_gossip(&g, &config))
        });
    }
}

#[cfg(feature = "parallel")]
fn bench_parallel(c: &mut Criterion) {
    use congest_sim::Parallelism;
    for n in [48usize, 96, 192] {
        let g = dense(n);
        let config = SimConfig {
            bandwidth: Bandwidth::bits(160),
            ..SimConfig::standard(g.n(), 1)
        }
        .with_parallelism(Parallelism::Parallel);
        for threads in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool builds");
            c.bench_function(
                &format!("step_engine/parallel/n={n}/threads={threads}"),
                |b| b.iter(|| pool.install(|| run_gossip(&g, &config))),
            );
        }
    }
}

#[cfg(not(feature = "parallel"))]
fn bench_parallel(_c: &mut Criterion) {
    eprintln!("step_engine: parallel rows skipped (build with --features parallel)");
}

criterion_group!(step_engine, bench_sequential, bench_parallel);
criterion_main!(step_engine);
