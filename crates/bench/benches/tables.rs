//! `cargo bench` entry point that regenerates the paper's evaluation
//! (quick sweeps). The same harness with full sweeps runs via
//! `cargo run --release -p wdr-bench --bin tables`.

use std::path::PathBuf;
use wdr_bench::{experiments, write_csv};

fn main() {
    // `cargo bench` passes `--bench`; ignore all flags.
    let out_dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let outputs = experiments::run_all(true, &out_dir.join("figures"));
    println!("# Wu–Yao PODC 2022 — regenerated evaluation (cargo bench, quick mode)\n");
    for out in &outputs {
        for t in &out.tables {
            println!("{}", t.to_markdown());
        }
        write_csv(out, &out_dir).expect("write CSVs");
    }
    println!("CSV artifacts: {}", out_dir.display());
}
