//! Criterion micro-benchmarks of the substrates: wall-clock performance of
//! the graph kernels, the CONGEST simulator, and the quantum-search
//! simulation. (The *round-complexity* evaluation lives in the `tables`
//! bench target; these benches track the cost of simulating, which is what
//! bounds the experiment sizes.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use congest_algos::baselines::{unweighted_apsp, weighted_apsp};
use congest_algos::bounded_sssp::bounded_distance_sssp;
use congest_graph::overlay::SkeletonDistances;
use congest_graph::rounding::RoundingScheme;
use congest_graph::{generators, shortest_path};
use congest_lb::degree::{approx_degree, SymmetricFn};
use congest_lb::formulas::GadgetDims;
use congest_lb::gadget::{diameter_gadget, paper_weights};
use congest_sim::telemetry::{CountingTracer, NullTracer};
use congest_sim::{primitives, SimConfig, Telemetry};
use quantum_sim::search::{bbht, durr_hoyer_max};
use quantum_sim::statevector::grover_state;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn graph_kernels(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = generators::erdos_renyi_connected(256, 0.05, 16, &mut rng);
    c.bench_function("dijkstra_n256", |b| {
        b.iter(|| shortest_path::dijkstra(black_box(&g), 0))
    });
    c.bench_function("hop_bounded_n256_l16", |b| {
        b.iter(|| shortest_path::hop_bounded(black_box(&g), 0, 16))
    });
    c.bench_function("apsp_floyd_warshall_n64", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let small = generators::erdos_renyi_connected(64, 0.1, 8, &mut rng);
        b.iter(|| shortest_path::floyd_warshall(black_box(&small)))
    });
    c.bench_function("skeleton_distances_n64_r8", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let small = generators::erdos_renyi_connected(64, 0.1, 8, &mut rng);
        let skeleton: Vec<usize> = (0..64).step_by(8).collect();
        let scheme = RoundingScheme::new(48, 0.25);
        b.iter(|| SkeletonDistances::compute(black_box(&small), &skeleton, scheme, 3))
    });
}

fn congest_simulation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let g = generators::erdos_renyi_connected(128, 0.05, 8, &mut rng);
    let cfg = SimConfig::standard(g.n(), g.max_weight());
    c.bench_function("alg2_bounded_sssp_n128", |b| {
        b.iter(|| bounded_distance_sssp(black_box(&g), 0, 0, 64, &cfg).unwrap())
    });
    c.bench_function("unweighted_apsp_sim_n64", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let small = generators::erdos_renyi_connected(64, 0.08, 1, &mut rng);
        let cfg = SimConfig::standard(64, 1);
        b.iter(|| unweighted_apsp(black_box(&small), 0, &cfg).unwrap())
    });
    c.bench_function("weighted_apsp_sim_n48", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let small = generators::erdos_renyi_connected(48, 0.1, 8, &mut rng);
        let cfg = SimConfig::standard(48, 8);
        b.iter(|| weighted_apsp(black_box(&small), 0, &cfg).unwrap())
    });
}

fn quantum_search(c: &mut Criterion) {
    c.bench_function("statevector_grover_12q_50it", |b| {
        b.iter(|| grover_state(12, |i| i == 1234, 50))
    });
    c.bench_function("bbht_n65536", |b| {
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(7),
            |mut rng| bbht(1 << 16, &[4242], &mut rng, u64::MAX),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("durr_hoyer_n4096", |b| {
        let values: Vec<u64> = (0..4096).map(|i| (i * 2654435761u64) % 100_000).collect();
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(8),
            |mut rng| durr_hoyer_max(&values, &mut rng, u64::MAX),
            BatchSize::SmallInput,
        )
    });
}

/// Tracer overhead on a simulation-heavy workload: the disabled default
/// (`Telemetry::off`), an attached-but-discarding `NullTracer`, and the
/// aggregate-counting `CountingTracer` must all land within noise of each
/// other — the telemetry layer's zero-cost-when-off claim, measured.
fn telemetry_overhead(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let g = generators::erdos_renyi_connected(128, 0.05, 8, &mut rng);
    let off = SimConfig::standard(g.n(), g.max_weight());
    c.bench_function("bfs_tree_n128_telemetry_off", |b| {
        b.iter(|| primitives::bfs_tree(black_box(&g), 0, &off).unwrap())
    });
    let null = off
        .clone()
        .with_telemetry(Telemetry::new(Arc::new(NullTracer)));
    c.bench_function("bfs_tree_n128_null_tracer", |b| {
        b.iter(|| primitives::bfs_tree(black_box(&g), 0, &null).unwrap())
    });
    let counting = off
        .clone()
        .with_telemetry(Telemetry::new(Arc::new(CountingTracer::default())));
    c.bench_function("bfs_tree_n128_counting_tracer", |b| {
        b.iter(|| primitives::bfs_tree(black_box(&g), 0, &counting).unwrap())
    });
}

/// Metrics-registry overhead on the same workload: an attached
/// `SimMetrics` bundle costs a handful of relaxed atomic adds per round
/// and must land within noise of the bare engine — the registry's
/// zero-steady-state-cost claim, measured next to `telemetry_overhead`
/// (the E8 `sequential+metrics` row gates the same comparison).
fn metrics_overhead(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let g = generators::erdos_renyi_connected(128, 0.05, 8, &mut rng);
    let off = SimConfig::standard(g.n(), g.max_weight());
    c.bench_function("bfs_tree_n128_metrics_off", |b| {
        b.iter(|| primitives::bfs_tree(black_box(&g), 0, &off).unwrap())
    });
    let registry = wdr_metrics::MetricsRegistry::new();
    let on = off
        .clone()
        .with_metrics(congest_sim::SimMetrics::register(&registry, "bench.sim"));
    c.bench_function("bfs_tree_n128_metrics_on", |b| {
        b.iter(|| primitives::bfs_tree(black_box(&g), 0, &on).unwrap())
    });
}

fn lower_bound_kernels(c: &mut Criterion) {
    c.bench_function("approx_degree_and_25", |b| {
        b.iter(|| approx_degree(&SymmetricFn::and(25), 1.0 / 3.0))
    });
    c.bench_function("diameter_gadget_h4", |b| {
        let dims = GadgetDims::new(4);
        let (alpha, beta) = paper_weights(&dims);
        let x = vec![true; dims.input_len()];
        b.iter(|| diameter_gadget(black_box(&dims), &x, &x, alpha, beta))
    });
}

criterion_group!(
    benches,
    graph_kernels,
    congest_simulation,
    quantum_search,
    telemetry_overhead,
    metrics_overhead,
    lower_bound_kernels
);
criterion_main!(benches);
