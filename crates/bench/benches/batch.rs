//! Criterion micro-benchmarks of the conformance batch engine: the same
//! corpus slice driven through the one-at-a-time path and through the
//! lockstep batch path at several lane counts. The E12 experiment gates
//! the end-to-end corpus speedup; these benches keep the per-layer costs
//! visible — shared-setup amortization shows up even at one lane, and the
//! lane sweep localizes scheduling overhead when the gate regresses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wdr_conformance::runner::{self, SuiteOptions};
use wdr_conformance::scenario::ScenarioSpec;

/// A small corpus prefix: big enough to contain shareable graph groups
/// (deterministic families repeat across seeds), small enough that a
/// criterion iteration stays in the tens of milliseconds.
fn corpus() -> Vec<ScenarioSpec> {
    runner::generate_corpus(12)
}

fn run(specs: &[ScenarioSpec], lanes: Option<usize>) -> usize {
    let options = SuiteOptions {
        lanes,
        ..SuiteOptions::default()
    };
    let report = runner::run_suite(black_box(specs), &options);
    assert!(report.passed(), "bench corpus must stay green");
    report.outcomes.len()
}

/// The reference path: cold per-scenario setup, corpus order.
fn sequential(c: &mut Criterion) {
    let specs = corpus();
    c.bench_function("batch_sequential_12", |b| b.iter(|| run(&specs, None)));
}

/// The batch engine across lane counts. One lane isolates the grouping +
/// shared-setup win from parallel fan-out; higher lane counts add the
/// rayon scope on top (a wash on few-core hosts, the E12 gate elsewhere).
fn batched(c: &mut Criterion) {
    let specs = corpus();
    for lanes in [1usize, 2, 4] {
        c.bench_function(&format!("batch_lanes{lanes}_12"), |b| {
            b.iter(|| run(&specs, Some(lanes)))
        });
    }
}

/// Grouping alone: the spec → graph-key partition the engine fans over.
/// Pure CPU, no scenario execution — a canary for key-derivation cost.
fn grouping(c: &mut Criterion) {
    let specs = runner::generate_corpus(48);
    c.bench_function("batch_group_by_graph_48", |b| {
        b.iter(|| wdr_conformance::batch::group_by_graph(black_box(&specs)).len())
    });
}

criterion_group!(benches, sequential, batched, grouping);
criterion_main!(benches);
