//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p wdr-bench --bin tables            # full sweep
//! cargo run --release -p wdr-bench --bin tables -- --quick # trimmed sweep
//! cargo run --release -p wdr-bench --bin tables -- --exp e1,e6
//! ```
//!
//! Markdown goes to stdout; CSVs and DOT artifacts land in
//! `target/experiments/`.

use std::path::PathBuf;
use wdr_bench::{experiments, write_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let only: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|x| x.trim().to_lowercase()).collect());
    let out_dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let run = |name: &str| only.as_ref().is_none_or(|xs| xs.iter().any(|x| x == name));
    let mut outputs = Vec::new();
    let t0 = std::time::Instant::now();
    if run("t1") {
        eprintln!("[tables] running T1…");
        outputs.push(experiments::t1());
    }
    if run("e1") {
        eprintln!("[tables] running E1…");
        outputs.push(experiments::e1(quick));
    }
    if run("e2") {
        eprintln!("[tables] running E2…");
        outputs.push(experiments::e2(quick));
    }
    if run("e3") {
        eprintln!("[tables] running E3…");
        outputs.push(experiments::e3(quick));
    }
    if run("e4") {
        eprintln!("[tables] running E4…");
        outputs.push(experiments::e4(quick));
    }
    if run("e5") {
        eprintln!("[tables] running E5…");
        outputs.push(experiments::e5(quick));
    }
    if run("e6") {
        eprintln!("[tables] running E6…");
        outputs.push(experiments::e6(quick));
    }
    if run("e7") {
        eprintln!("[tables] running E7…");
        outputs.push(experiments::e7(quick));
    }
    if run("e8") {
        eprintln!("[tables] running E8…");
        outputs.push(experiments::e8(quick, &out_dir));
    }
    if run("e9") {
        eprintln!("[tables] running E9…");
        outputs.push(experiments::e9(quick, &out_dir));
    }
    if run("e10") {
        eprintln!("[tables] running E10…");
        outputs.push(experiments::e10(quick, &out_dir));
    }
    if run("e11") {
        eprintln!("[tables] running E11…");
        outputs.push(experiments::e11(quick, &out_dir));
    }
    if run("e12") {
        eprintln!("[tables] running E12…");
        outputs.push(experiments::e12(quick, &out_dir));
    }
    if run("e13") {
        eprintln!("[tables] running E13…");
        outputs.push(experiments::e13(quick, &out_dir));
    }
    if run("f") || run("figures") {
        eprintln!("[tables] running F1–F4…");
        outputs.push(experiments::figures(&out_dir.join("figures")));
    }
    if run("a1") {
        eprintln!("[tables] running A1…");
        outputs.push(experiments::a1());
    }
    if run("a2") {
        eprintln!("[tables] running A2…");
        outputs.push(experiments::a2(quick));
    }
    if run("a3") {
        eprintln!("[tables] running A3…");
        outputs.push(experiments::a3(quick));
    }
    if run("a4") {
        eprintln!("[tables] running A4…");
        outputs.push(experiments::a4());
    }

    println!(
        "# Wu–Yao PODC 2022 — regenerated evaluation ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    for out in &outputs {
        for t in &out.tables {
            println!("{}", t.to_markdown());
        }
        for a in &out.artifacts {
            println!("_artifact: {a}_\n");
        }
        write_csv(out, &out_dir).expect("write CSVs");
    }
    eprintln!(
        "[tables] done in {:.1}s; CSVs in {}",
        t0.elapsed().as_secs_f64(),
        out_dir.display()
    );
}
