//! `wdr-trace` — render a JSONL telemetry trace as tables.
//!
//! Usage:
//!
//! ```text
//! wdr-trace <trace.jsonl> [--csv]
//! ```
//!
//! Reads a trace written by `congest_sim::telemetry::JsonlTracer`, rebuilds
//! the phase tree, and prints the per-phase breakdown, the hottest channels
//! (when the trace contains `ChannelProfile` events), and the quantum search
//! invocations — as markdown by default, as CSV with `--csv`.

use std::process::ExitCode;
use wdr_bench::trace::{parse_trace, render_csv, render_markdown};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path] = paths.as_slice() else {
        eprintln!("usage: wdr-trace <trace.jsonl> [--csv]");
        return ExitCode::from(2);
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wdr-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match parse_trace(&input) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("wdr-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!(
        "{}",
        if csv {
            render_csv(&events)
        } else {
            render_markdown(&events)
        }
    );
    ExitCode::SUCCESS
}
