//! `wdr-trace` — render a JSONL telemetry trace as tables.
//!
//! Usage:
//!
//! ```text
//! wdr-trace <trace.jsonl> [--csv | --json]
//! ```
//!
//! Reads a trace written by `congest_sim::telemetry::JsonlTracer`, rebuilds
//! the phase tree, and prints the per-phase breakdown, the hottest channels
//! (when the trace contains `ChannelProfile` events), and the quantum search
//! invocations — as markdown by default, as CSV with `--csv`, as one JSON
//! array of table objects with `--json`.

use std::process::ExitCode;
use wdr_bench::trace::{parse_trace, render_csv, render_json, render_markdown};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    if csv && json {
        eprintln!("wdr-trace: --csv and --json are mutually exclusive");
        return ExitCode::from(2);
    }
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path] = paths.as_slice() else {
        eprintln!("usage: wdr-trace <trace.jsonl> [--csv | --json]");
        return ExitCode::from(2);
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wdr-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match parse_trace(&input) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("wdr-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = if csv {
        render_csv(&events)
    } else if json {
        render_json(&events)
    } else {
        render_markdown(&events)
    };
    print!("{rendered}");
    if json {
        println!();
    }
    ExitCode::SUCCESS
}
