//! The experiments E1–E7, F1–F4 and ablations A1–A4 of DESIGN.md §4.
//!
//! Every function is deterministic given its internal seeds; `quick = true`
//! trims the sweep sizes (the default for `cargo bench`), `quick = false`
//! is the full sweep used for EXPERIMENTS.md.

use crate::harness::{loglog_slope, ExperimentOutput, Table};
use congest_algos::baselines::{diameter_radius_exact, two_approx_diameter_radius, WeightMode};
use congest_algos::bounded_sssp::{bounded_distance_sssp, bounded_hop_sssp};
use congest_algos::multi_source::multi_source_bounded_hop;
use congest_algos::overlay_net::{embed_overlay, overlay_sssp};
use congest_graph::overlay::SkeletonDistances;
use congest_graph::rounding::RoundingScheme;
use congest_graph::{contract, generators, metrics, WeightedGraph};
use congest_lb::formulas::{f_diameter, f_radius, GadgetDims};
use congest_lb::gadget::{diameter_gadget, node_count, paper_weights, radius_gadget, GadgetNode};
use congest_lb::reduction::{measured_bound, reduction_point};
use congest_lb::server::simulate_transcript;
use congest_sim::telemetry::{build_phase_tree, CollectingTracer, PhaseNode};
use congest_sim::{SimConfig, Telemetry};
use congest_wdr::algorithm::{quantum_weighted, Objective};
use congest_wdr::cost::{self, Polylog};
use congest_wdr::params::WdrParams;
use congest_wdr::unweighted::quantum_unweighted;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const MAX_W: u64 = 8;
const EPS: f64 = 0.25;

fn family(n: usize, hubs: usize, seed: u64) -> WeightedGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generators::cluster_ring(n, hubs, MAX_W, &mut rng)
}

fn cfg(g: &WeightedGraph) -> SimConfig {
    SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(2_000_000_000)
}

fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![32, 48, 64, 96]
    } else {
        vec![32, 48, 64, 96, 128, 160]
    }
}

/// Total subtree rounds of every phase named `name` in the tree.
fn phase_rounds(tree: &PhaseNode, name: &str) -> usize {
    tree.walk()
        .iter()
        .filter(|(_, node)| node.name == name)
        .map(|(_, node)| node.subtree().rounds)
        .sum()
}

/// Re-runs one representative instance with a collecting tracer and reads
/// the measured `T₀ / T₁ / T₂` off the phase tree (Lemma 3.5's accounting).
fn phase_breakdown(
    g: &WeightedGraph,
    objective: Objective,
    params: &WdrParams,
    seed: u64,
) -> String {
    let tracer = std::sync::Arc::new(CollectingTracer::default());
    let config = cfg(g).with_telemetry(Telemetry::new(tracer.clone()));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    if quantum_weighted(g, 0, objective, params, &config, &mut rng).is_err() {
        return "-".to_string();
    }
    let tree = build_phase_tree(&tracer.events());
    format!(
        "{}/{}/{}",
        phase_rounds(&tree, "skeleton_init"),
        phase_rounds(&tree, "skeleton_setup"),
        phase_rounds(&tree, "skeleton_evaluate")
    )
}

fn weighted_scaling(objective: Objective, id: &str, title: &str, quick: bool) -> ExperimentOutput {
    let seeds: u64 = if quick { 6 } else { 10 };
    let mut table = Table::new(
        id,
        title,
        &[
            "n",
            "D",
            "budgeted rounds",
            "adaptive rounds (mean)",
            "ratio (max)",
            "composed model",
            "headline n^0.9·D^0.3",
            "phase rounds T0/T1/T2",
        ],
    );
    let mut points = Vec::new();
    let mut adaptive_points = Vec::new();
    let mut model_points = Vec::new();
    for n in sizes(quick) {
        let mut rounds_sum = 0.0;
        let mut budgeted_sum = 0.0;
        let mut ratio_max: f64 = 0.0;
        let mut d_used = 0;
        for seed in 0..seeds {
            let g = family(n, 4, 1000 + seed % 2);
            let d = metrics::unweighted_diameter(&g);
            d_used = d;
            let params = WdrParams::for_benchmarks(n, d, EPS);
            let mut rng = ChaCha8Rng::seed_from_u64(77 * n as u64 + seed);
            let rep = quantum_weighted(&g, 0, objective, &params, &cfg(&g), &mut rng)
                .expect("simulation succeeds");
            rounds_sum += rep.total_rounds as f64;
            budgeted_sum += rep.budgeted_rounds as f64;
            let ratio = if rep.exact > 0.0 {
                rep.estimate / rep.exact
            } else {
                1.0
            };
            ratio_max = ratio_max.max(ratio);
            assert!(
                ratio <= (1.0 + EPS) * (1.0 + EPS) + 1e-6,
                "approximation guarantee violated at n={n}"
            );
        }
        let mean = rounds_sum / seeds as f64;
        let budgeted = (budgeted_sum / seeds as f64) as usize;
        let params = WdrParams::for_benchmarks(n, d_used.max(1), EPS);
        let composed = cost::composed_cost(n, d_used.max(1), params.eps, params.r, params.k as f64);
        points.push((n as f64, budgeted as f64));
        adaptive_points.push((n as f64, mean));
        model_points.push((n as f64, composed));
        let breakdown = {
            let g = family(n, 4, 1000);
            phase_breakdown(&g, objective, &params, 77 * n as u64)
        };
        table.push(vec![
            n.to_string(),
            d_used.to_string(),
            budgeted.to_string(),
            format!("{mean:.0}"),
            format!("{ratio_max:.4}"),
            format!("{composed:.0}"),
            format!(
                "{:.0}",
                cost::quantum_weighted_upper(n, d_used, Polylog::Drop)
            ),
            breakdown,
        ]);
    }
    let slope = loglog_slope(&points);
    let slope_adaptive = loglog_slope(&adaptive_points);
    let slope_model = loglog_slope(&model_points);
    table.commentary = format!(
        "Paper (Theorem 1.1): Õ(min{{n^0.9·D^0.3, n}}) — asymptotic log-log slope 0.9 in n \
         at fixed D. At simulatable sizes the composition's lower-order terms matter, so \
         the fair model is the paper's explicit Lemma 3.5 composition evaluated at the \
         same sizes (slope **{slope_model:.2}** here). Measured slope of the executed \
         Lemma 3.1 schedule: **{slope:.2}** (adaptive-search mean: {slope_adaptive:.2}). \
         Approximation guarantee (1+ε)² = {:.3} never violated.",
        (1.0 + EPS) * (1.0 + EPS)
    );
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![],
    }
}

/// E1: Table 1 row — quantum weighted diameter upper bound, measured.
pub fn e1(quick: bool) -> ExperimentOutput {
    weighted_scaling(
        Objective::Diameter,
        "E1",
        "Quantum weighted diameter: measured rounds vs n (Theorem 1.1 row of Table 1)",
        quick,
    )
}

/// E2: Table 1 row — quantum weighted radius upper bound, measured.
pub fn e2(quick: bool) -> ExperimentOutput {
    weighted_scaling(
        Objective::Radius,
        "E2",
        "Quantum weighted radius: measured rounds vs n (Theorem 1.1 row of Table 1)",
        quick,
    )
}

/// E3: the `min{n^{9/10}D^{3/10}, n}` crossover — sweep `D` at fixed `n`.
pub fn e3(quick: bool) -> ExperimentOutput {
    let n = if quick { 64 } else { 96 };
    let mut table = Table::new(
        "E3",
        "D-sweep at fixed n: the min{n^0.9·D^0.3, n} branches",
        &[
            "n",
            "hubs",
            "D",
            "rounds",
            "model min-branch",
            "crossover D = n^⅓",
        ],
    );
    let mut points = Vec::new();
    for hubs in [2usize, 4, 8, 12] {
        let g = family(n, hubs, 3000 + hubs as u64);
        let d = metrics::unweighted_diameter(&g);
        let params = WdrParams::for_benchmarks(n, d, EPS);
        let mut rng = ChaCha8Rng::seed_from_u64(500 + hubs as u64);
        let rep = quantum_weighted(&g, 0, Objective::Diameter, &params, &cfg(&g), &mut rng)
            .expect("simulation succeeds");
        points.push((d as f64, rep.budgeted_rounds as f64));
        table.push(vec![
            n.to_string(),
            hubs.to_string(),
            d.to_string(),
            rep.budgeted_rounds.to_string(),
            format!("{:.0}", cost::quantum_weighted_upper(n, d, Polylog::Drop)),
            format!("{:.1}", cost::crossover_d(n)),
        ]);
    }
    let slope = loglog_slope(&points);
    table.commentary = format!(
        "Paper: rounds grow like D^0.3 below the crossover D = n^(1/3) ≈ {:.1}, then the \
         trivial-n branch takes over. Measured D-slope: **{slope:.2}** \
         (the D^0.3 regime, inflated by the D-dependent phases of Lemma 3.5).",
        cost::crossover_d(n)
    );
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![],
    }
}

/// E4: the classical `Θ̃(n)` rows, measured (exact APSP baselines).
pub fn e4(quick: bool) -> ExperimentOutput {
    let mut table = Table::new(
        "E4",
        "Classical exact diameter/radius: measured rounds vs n (classical rows of Table 1)",
        &[
            "n",
            "D",
            "rounds (weighted)",
            "rounds (unweighted)",
            "rounds (2-approx)",
            "model n",
        ],
    );
    let mut pts_w = Vec::new();
    for n in sizes(quick) {
        let g = family(n, 4, 2000);
        let d = metrics::unweighted_diameter(&g);
        let (dw, rw, st_w) = diameter_radius_exact(&g, 0, &cfg(&g), WeightMode::Weighted)
            .expect("simulation succeeds");
        let (du, ru, st_u) = diameter_radius_exact(&g, 0, &cfg(&g), WeightMode::Unweighted)
            .expect("simulation succeeds");
        let exact_w = metrics::extremes(&g);
        let exact_u = metrics::unweighted_extremes(&g);
        assert_eq!(dw, exact_w.diameter);
        assert_eq!(rw, exact_w.radius);
        assert_eq!(du, exact_u.diameter);
        assert_eq!(ru, exact_u.radius);
        let (d2, r2, st_2) =
            two_approx_diameter_radius(&g, 0, &cfg(&g)).expect("simulation succeeds");
        assert!(d2 >= dw && d2 <= dw.saturating_mul(2));
        assert!(r2 >= rw && r2 <= rw.saturating_mul(2));
        pts_w.push((n as f64, st_w.rounds as f64));
        table.push(vec![
            n.to_string(),
            d.to_string(),
            st_w.rounds.to_string(),
            st_u.rounds.to_string(),
            st_2.rounds.to_string(),
            n.to_string(),
        ]);
    }
    let slope = loglog_slope(&pts_w);
    table.commentary = format!(
        "Paper: exact APSP (hence diameter/radius) takes Θ̃(n) rounds classically \
         [6, 17, 22] and this is tight [2, 11]; a mere 2-approximation is far cheaper \
         (Table 1's √n·D^(1/4)+D row [8] — here a single SSSP + convergecast). \
         Measured weighted-APSP slope: **{slope:.2}** (≈ 1 expected)."
    );
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![],
    }
}

/// E5: the quantum **unweighted** rows, measured (`√n·D` execution) plus
/// the `√(nD)` LGM model.
pub fn e5(quick: bool) -> ExperimentOutput {
    let mut table = Table::new(
        "E5",
        "Quantum unweighted diameter: measured rounds vs n (LGM row of Table 1)",
        &[
            "n",
            "D",
            "budgeted rounds",
            "adaptive (mean)",
            "found exact",
            "model √n·D",
            "LGM model √(nD)",
        ],
    );
    let seeds: u64 = if quick { 4 } else { 8 };
    let mut points = Vec::new();
    for n in sizes(quick) {
        let mut sum = 0.0;
        let mut budgeted_sum = 0.0;
        let mut exact_hits = 0;
        let mut d_used = 0;
        for seed in 0..seeds {
            // Sparse random graphs: the maximum eccentricity is attained by
            // few nodes, so the search genuinely has to hunt (on the
            // cluster-ring family nearly every node is a diameter witness
            // and the search ends immediately).
            let mut grng = ChaCha8Rng::seed_from_u64(4000 + 13 * n as u64 + seed);
            let g = generators::erdos_renyi_connected(n, 1.5 / n as f64, 1, &mut grng);
            let d = metrics::unweighted_diameter(&g);
            d_used = d;
            let mut rng = ChaCha8Rng::seed_from_u64(900 + 31 * n as u64 + seed);
            let rep = quantum_unweighted(&g, 0, Objective::Diameter, 0.05, &cfg(&g), &mut rng)
                .expect("simulation succeeds");
            sum += rep.total_rounds as f64;
            budgeted_sum += rep.budgeted_rounds as f64;
            exact_hits += usize::from(rep.estimate == rep.exact);
        }
        let mean = sum / seeds as f64;
        let budgeted = budgeted_sum / seeds as f64;
        points.push((n as f64, budgeted / d_used.max(1) as f64));
        table.push(vec![
            n.to_string(),
            d_used.to_string(),
            format!("{budgeted:.0}"),
            format!("{mean:.0}"),
            format!("{exact_hits}/{seeds}"),
            format!(
                "{:.0}",
                cost::grover_bfs_unweighted_upper(n, d_used, Polylog::Drop)
            ),
            format!(
                "{:.0}",
                cost::lgm_unweighted_upper(n, d_used, Polylog::Drop)
            ),
        ]);
    }
    let slope = loglog_slope(&points);
    table.commentary = format!(
        "Paper [12]: Õ(√(nD)). Our executable variant evaluates eccentricities by BFS \
         (Õ(√n·D); same √n shape — see DESIGN.md §1). Measured slope of rounds/D vs n: \
         **{slope:.2}** (0.5 expected). The ordering of Table 1 at small D — \
         unweighted-quantum < weighted-quantum < classical — is visible against E1/E4."
    );

    // E5b: the *classical* 3/2-approximation rows ([3, 15]): Õ(√n + D).
    let mut t2 = Table::new(
        "E5b",
        "Classical 3/2-approx unweighted diameter (Õ(√n + D) rows of Table 1)",
        &[
            "n",
            "D",
            "rounds",
            "estimate ∈ [⌊2D/3⌋, D]",
            "radius est ∈ [R, 2R]",
            "model √n + D",
        ],
    );
    let mut pts2 = Vec::new();
    for n in sizes(quick) {
        let mut grng = ChaCha8Rng::seed_from_u64(8800 + n as u64);
        let g = generators::erdos_renyi_connected(n, 1.5 / n as f64, 1, &mut grng);
        let exact = metrics::unweighted_extremes(&g);
        let d = exact.diameter.expect_finite();
        let r = exact.radius.expect_finite();
        let res = congest_algos::three_halves::three_halves_diameter(&g, 0, &cfg(&g), &mut grng)
            .expect("simulation succeeds");
        let d_ok = res.diameter_estimate <= d && 3 * res.diameter_estimate + 3 >= 2 * d;
        let r_ok = res.radius_estimate >= r && res.radius_estimate <= 2 * r;
        assert!(d_ok && r_ok, "3/2-approx guarantee failed at n={n}");
        pts2.push((n as f64, res.stats.rounds as f64));
        t2.push(vec![
            n.to_string(),
            d.to_string(),
            res.stats.rounds.to_string(),
            format!("{} ✓", res.diameter_estimate),
            format!("{} ✓", res.radius_estimate),
            format!("{:.0}", (n as f64).sqrt() + d as f64),
        ]);
    }
    let slope2 = loglog_slope(&pts2);
    t2.commentary = format!(
        "Paper [3, 15]: Õ(√n + D) for a 3/2-approximation — the cheap side of the \
         classical approximation/round trade-off. Measured slope: **{slope2:.2}** \
         (≈ 0.5 + the log-factor sample size; linear exact APSP is E4)."
    );
    ExperimentOutput {
        tables: vec![table, t2],
        artifacts: vec![],
    }
}

/// E6: the lower-bound chain of Theorem 1.2, measured link by link.
pub fn e6(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::default();

    // (a) The Lemma 4.4 / 4.9 gaps on the real gadgets.
    let dims = GadgetDims::new(2);
    let (alpha, beta) = paper_weights(&dims);
    let mut gap = Table::new(
        "E6a",
        "Gadget gap (Lemmas 4.4 & 4.9): diameter/radius decide F/F′ on every tried input",
        &[
            "inputs tried",
            "F=1 cases",
            "F=0 cases",
            "diameter gap holds",
            "radius gap holds",
        ],
    );
    let trials = if quick { 12 } else { 40 };
    let mut rng = ChaCha8Rng::seed_from_u64(60);
    let (mut ones, mut zeros, mut d_ok, mut r_ok) = (0, 0, 0, 0);
    for t in 0..trials {
        let density = [0.95, 0.5, 0.15][t % 3];
        let x: Vec<bool> = (0..dims.input_len())
            .map(|_| rng.gen_bool(density))
            .collect();
        let y: Vec<bool> = (0..dims.input_len())
            .map(|_| rng.gen_bool(density))
            .collect();
        let fd = f_diameter(&dims, &x, &y);
        if fd {
            ones += 1
        } else {
            zeros += 1
        }
        let g = diameter_gadget(&dims, &x, &y, alpha, beta);
        let d = metrics::diameter(&g.graph).expect_finite();
        let n = g.graph.n() as u64;
        let holds = if fd {
            d <= 2 * alpha + n
        } else {
            d >= (alpha + beta).min(3 * alpha)
        };
        d_ok += usize::from(holds);
        let rg = radius_gadget(&dims, &x, &y, alpha, beta);
        let r = metrics::radius(&rg.graph).expect_finite();
        let fr = f_radius(&dims, &x, &y);
        let rn = rg.graph.n() as u64;
        let holds_r = if fr {
            r <= (2 * alpha).max(beta) + rn
        } else {
            r >= (alpha + beta).min(3 * alpha)
        };
        r_ok += usize::from(holds_r);
    }
    gap.push(vec![
        trials.to_string(),
        ones.to_string(),
        zeros.to_string(),
        format!("{d_ok}/{trials}"),
        format!("{r_ok}/{trials}"),
    ]);
    gap.commentary =
        "Both directions of both gap lemmas verified exactly on every sampled input pair.".into();
    assert_eq!(d_ok, trials);
    assert_eq!(r_ok, trials);
    out.tables.push(gap);

    // (b) Lemma 4.1, measured on real protocols.
    let mut sim = Table::new(
        "E6b",
        "Simulation Lemma 4.1: charged Alice/Bob communication of real CONGEST runs",
        &[
            "h",
            "n",
            "rounds T",
            "total msgs",
            "charged msgs",
            "max/round (cap 2h)",
            "charged bits ≤ 2ThB",
        ],
    );
    let heights: &[u32] = if quick { &[4] } else { &[4, 6] };
    for &h in heights {
        let dims = GadgetDims::new(h);
        let (alpha, beta) = paper_weights(&dims);
        let ones_in = vec![true; dims.input_len()];
        let g = diameter_gadget(&dims, &ones_in, &ones_in, alpha, beta);
        let u = g.graph.unweighted_view();
        // Start the flood inside Alice's part so the players actually have
        // to speak to the server as the frontier crosses into its region.
        let src = g.layout.id(GadgetNode::A(1));
        let limit = ((1u64 << h) / 2).saturating_sub(2).max(1); // rounds = limit + 1 < 2^h/2
        let c = SimConfig::standard(u.n(), 1).with_message_log();
        let (_, stats) = bounded_distance_sssp(&u, src, src, limit, &c).expect("sim ok");
        let report = simulate_transcript(&g.layout, &stats.message_log);
        let maxr = report.per_round.iter().copied().max().unwrap_or(0);
        assert!(maxr <= report.per_round_cap);
        let bound = report.bound_bits(h, 64);
        assert!(report.cost.bits <= bound);
        sim.push(vec![
            h.to_string(),
            g.graph.n().to_string(),
            report.rounds.to_string(),
            stats.messages.to_string(),
            report.cost.messages.to_string(),
            format!("{maxr} ≤ {}", report.per_round_cap),
            format!("{} ≤ {bound}", report.cost.bits),
        ]);
    }
    sim.commentary = "The ownership schedule charges only the O(h) frontier messages per \
        round; every run stays under the 2·T·h·B budget."
        .into();
    out.tables.push(sim);

    // (c) Approximate degree, measured by the exact LP.
    let mut deg = Table::new(
        "E6c",
        "deg_{1/3} of AND_k / OR_k (Lemma 4.6's Θ(√k)), computed exactly by LP",
        &["k", "deg(AND_k)", "deg(OR_k)", "√k"],
    );
    let ks: &[usize] = if quick {
        &[1, 4, 9, 16, 25]
    } else {
        &[1, 4, 9, 16, 25, 36, 49]
    };
    let mut fit_pts = Vec::new();
    for &k in ks {
        let da =
            congest_lb::degree::approx_degree(&congest_lb::degree::SymmetricFn::and(k), 1.0 / 3.0);
        let do_ =
            congest_lb::degree::approx_degree(&congest_lb::degree::SymmetricFn::or(k), 1.0 / 3.0);
        assert_eq!(da, do_, "AND/OR duality");
        fit_pts.push((k, da));
        deg.push(vec![
            k.to_string(),
            da.to_string(),
            do_.to_string(),
            format!("{:.2}", (k as f64).sqrt()),
        ]);
    }
    let (c_fit, resid) = congest_lb::degree::sqrt_fit(&fit_pts);
    deg.commentary = format!(
        "Fit: deg_{{1/3}}(AND_k) ≈ {c_fit:.2}·√k (max relative residual {resid:.2}) — \
         Lemma 4.6's Θ(√k), measured."
    );
    out.tables.push(deg);

    // (d) The composed bound vs the upper bound.
    let mut comp = Table::new(
        "E6d",
        "Composed Theorem 4.2 bound vs Theorem 1.1 upper bound (the Table 1 gap)",
        &[
            "h",
            "n",
            "lower Ω: 2^h/(h·log n)",
            "≈ n^⅔/log²n",
            "upper Õ: n^0.9·D^0.3 (D=log n)",
            "measured Q^sv via deg fit",
        ],
    );
    for h in [2u32, 4, 6, 8, 10, 12] {
        let p = reduction_point(h);
        let d = (p.n as f64).log2().ceil() as usize;
        let (_, mb) = measured_bound(&GadgetDims::new(h), &[4, 9, 16, 25]);
        comp.push(vec![
            h.to_string(),
            p.n.to_string(),
            format!("{:.1}", p.rounds),
            format!("{:.1}", p.n_two_thirds_over_log2),
            format!("{:.0}", cost::quantum_weighted_upper(p.n, d, Polylog::Drop)),
            format!("{mb:.0}"),
        ]);
    }
    comp.commentary = "The n^⅔ lower bound and the n^0.9 upper bound bracket the open \
        territory of Table 1's weighted rows; both grow polynomially and the gap \
        widens as n^{0.9−0.667}."
        .into();
    out.tables.push(comp);
    out
}

/// E7: the fault sweep — drop rate × crash count on a fixed seeded graph,
/// measuring the rounds overhead and answer quality of the reliable-delivery
/// layer ([`congest_algos::resilient::resilient_bfs`]).
///
/// (Planned as "E3" in the fault-injection design note; renamed E7 because
/// the E3 slot was already taken by the D-sweep above.)
pub fn e7(quick: bool) -> ExperimentOutput {
    use congest_algos::resilient::{resilient_bfs, DegradationReport};
    use congest_sim::reliable::ReliablePolicy;
    use congest_sim::FaultPlan;

    let n = if quick { 24 } else { 48 };
    let g = family(n, 4, 7000);
    let base_cfg = || SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(100_000);
    let policy = ReliablePolicy::default();

    let mut ws = congest_graph::SsspWorkspace::new();
    let clean = resilient_bfs(&g, 0, &base_cfg(), policy).expect("fault-free run succeeds");
    let clean_report = DegradationReport::evaluate_with(&g, 0, &clean, &mut ws);
    assert_eq!(clean_report.correct, g.n(), "fault-free baseline is exact");
    let baseline = clean.stats.rounds.max(1);

    let mut table = Table::new(
        "E7",
        "Fault sweep: reliable-BFS overhead and answer quality vs drop rate × crashes",
        &[
            "drop rate",
            "crashes",
            "rounds",
            "overhead ×",
            "retransmissions",
            "dropped msgs",
            "exact/degraded/failed",
            "correct fraction",
        ],
    );
    let drop_rates: &[f64] = if quick {
        &[0.0, 0.1, 0.3]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.3]
    };
    let mut worst_overhead = 1.0f64;
    let mut worst_quality = 1.0f64;
    for &drop in drop_rates {
        for crashes in [0usize, 1, 2] {
            let mut plan = FaultPlan::new(7100 + crashes as u64).with_drop_rate(drop);
            for c in 0..crashes {
                // Transient mid-run crashes of non-leader nodes; the node
                // recovers with its state intact and retransmission catches
                // it up.
                let node = (1 + (c * (n - 2)) / crashes).min(n - 1);
                plan = plan.with_crash(node, 2 + c, Some(6 + 2 * c));
            }
            let run = resilient_bfs(&g, 0, &base_cfg().with_faults(plan), policy)
                .expect("faulty run terminates");
            let report = DegradationReport::evaluate_with(&g, 0, &run, &mut ws);
            let overhead = run.stats.rounds as f64 / baseline as f64;
            worst_overhead = worst_overhead.max(overhead);
            worst_quality = worst_quality.min(report.correct_fraction());
            if drop == 0.0 && crashes == 0 {
                assert_eq!(
                    run.stats.rounds, baseline,
                    "all-zero plan must cost exactly the clean run"
                );
                assert_eq!(report.exact, g.n());
            }
            table.push(vec![
                format!("{drop:.2}"),
                crashes.to_string(),
                run.stats.rounds.to_string(),
                format!("{overhead:.2}"),
                run.stats.resilience.retransmissions.to_string(),
                run.stats.resilience.dropped_messages.to_string(),
                format!("{}/{}/{}", report.exact, report.degraded, report.failed),
                format!("{:.3}", report.correct_fraction()),
            ]);
        }
    }
    table.commentary = format!(
        "Ack/retransmit delivery (max {} retries, exponential backoff) masks message loss \
         at the cost of extra rounds: worst overhead ×{worst_overhead:.2} across the sweep, \
         worst per-node correctness {worst_quality:.3}. The zero-fault row costs exactly \
         the clean baseline ({baseline} rounds) — the fault oracle is pay-as-you-go.",
        policy.max_retries
    );
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![],
    }
}

/// The E8 gossip workload: every node broadcasts a running digest each
/// round and burns `work` iterations of a splitmix-style mixer per round,
/// so the compute phase has enough local work for a thread sweep to bite.
/// Deterministic: the final digests depend only on the graph and `rounds`.
struct GossipMix {
    digest: u64,
    rounds: usize,
    work: u32,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl congest_sim::NodeProgram for GossipMix {
    type Msg = u64;
    type Output = u64;

    fn start(&mut self, ctx: &congest_sim::NodeCtx, mb: &mut congest_sim::Mailbox<u64>) {
        self.digest = mix(ctx.id as u64 + 1);
        mb.broadcast(ctx, self.digest);
    }

    fn round(
        &mut self,
        ctx: &congest_sim::NodeCtx,
        round: usize,
        inbox: &[(congest_graph::NodeId, u64)],
        mb: &mut congest_sim::Mailbox<u64>,
    ) -> congest_sim::Status {
        for &(_, d) in inbox {
            self.digest = mix(self.digest ^ d);
        }
        for _ in 0..self.work {
            self.digest = mix(self.digest);
        }
        if round < self.rounds {
            mb.broadcast(ctx, self.digest);
            congest_sim::Status::Running
        } else {
            congest_sim::Status::Done
        }
    }

    fn finish(self, _ctx: &congest_sim::NodeCtx) -> u64 {
        self.digest
    }
}

/// One timed E8 configuration, serialized into `BENCH_step_engine.json`.
#[derive(Clone, Debug, serde::Serialize)]
struct E8Row {
    n: usize,
    edges: usize,
    rounds: usize,
    mode: String,
    threads: usize,
    secs_per_run: f64,
    rounds_per_sec: f64,
    speedup_vs_sequential: f64,
}

/// The machine-readable E8 report (`BENCH_step_engine.json`).
#[derive(Clone, Debug, serde::Serialize)]
struct E8Report {
    experiment: String,
    meta: wdr_metrics::RunMeta,
    host_threads: usize,
    parallel_feature: bool,
    rows: Vec<E8Row>,
    /// Registry snapshot of the instrumented rows, as sorted
    /// `(name, value)` pairs (names pre-qualified `e8.n{n}.sim.…`).
    /// Counter totals accumulate over every timing iteration.
    metrics: Vec<(String, f64)>,
}

/// Runs one E8 workload under the criterion timing loop and returns
/// (mean seconds per run, simulated rounds, final digests).
fn e8_time_run(
    g: &WeightedGraph,
    config: &SimConfig,
    rounds: usize,
    work: u32,
    measurement: std::time::Duration,
) -> (f64, usize, Vec<u64>) {
    use congest_sim::run_phase;
    let mut crit = criterion::Criterion::default().measurement_time(measurement);
    let mut sim_rounds = 0;
    let mut outputs = Vec::new();
    crit.bench_function("e8", |b| {
        b.iter(|| {
            let (out, stats) = run_phase(g, 0, config, "e8_gossip", |_, _| GossipMix {
                digest: 0,
                rounds,
                work,
            })
            .expect("gossip run succeeds");
            sim_rounds = stats.rounds;
            outputs = out;
        });
    });
    let secs = crit
        .last_measurement()
        .expect("bench_function records a measurement")
        .as_secs_f64();
    (secs, sim_rounds, outputs)
}

/// E8: round-engine throughput — rounds/sec of the sequential engine vs
/// the parallel engine at 1/2/4/8 threads, on dense gossip workloads.
/// Writes `BENCH_step_engine.json` under `out_dir`.
pub fn e8(quick: bool, out_dir: &std::path::Path) -> ExperimentOutput {
    let host_threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let (ns, rounds, work, measurement) = if quick {
        (vec![48, 96], 60, 64, std::time::Duration::from_millis(60))
    } else {
        (
            vec![64, 128, 256],
            150,
            256,
            std::time::Duration::from_millis(400),
        )
    };
    let mut table = Table::new(
        "E8",
        "Round-engine throughput: sequential vs parallel compute phase",
        &[
            "n",
            "edges",
            "rounds",
            "mode",
            "threads",
            "time/run",
            "rounds/sec",
            "speedup",
        ],
    );
    let mut rows: Vec<E8Row> = Vec::new();
    let registry = wdr_metrics::MetricsRegistry::new();
    for &n in &ns {
        let mut rng = ChaCha8Rng::seed_from_u64(8800 + n as u64);
        let g = generators::erdos_renyi_connected(n, 0.3, 1, &mut rng);
        let edges = g.m();
        let config = SimConfig {
            bandwidth: congest_sim::Bandwidth::bits(160),
            ..SimConfig::standard(g.n(), 1)
        };
        let (seq_secs, sim_rounds, seq_out) = e8_time_run(&g, &config, rounds, work, measurement);
        rows.push(E8Row {
            n,
            edges,
            rounds: sim_rounds,
            mode: "sequential".into(),
            threads: 1,
            secs_per_run: seq_secs,
            rounds_per_sec: sim_rounds as f64 / seq_secs,
            speedup_vs_sequential: 1.0,
        });
        // Metrics-on row: the same workload with a live SimMetrics bundle
        // attached. The handful of relaxed atomic adds per round must land
        // within noise of the bare engine — gated here, not just plotted.
        let sim_metrics = congest_sim::SimMetrics::register(&registry, &format!("e8.n{n}.sim"));
        let metrics_cfg = config.clone().with_metrics(sim_metrics.clone());
        let (met_secs, met_rounds, met_out) =
            e8_time_run(&g, &metrics_cfg, rounds, work, measurement);
        assert_eq!(met_rounds, sim_rounds, "metrics-on round count diverged");
        assert_eq!(met_out, seq_out, "metrics-on outputs diverged at n={n}");
        assert!(
            met_secs <= seq_secs * 1.5 + 1e-3,
            "metrics overhead at n={n}: {met_secs:.4}s vs {seq_secs:.4}s bare"
        );
        assert_eq!(
            sim_metrics.rounds.get() % sim_rounds as u64,
            0,
            "every timing iteration records exactly {sim_rounds} rounds"
        );
        rows.push(E8Row {
            n,
            edges,
            rounds: sim_rounds,
            mode: "sequential+metrics".into(),
            threads: 1,
            secs_per_run: met_secs,
            rounds_per_sec: sim_rounds as f64 / met_secs,
            speedup_vs_sequential: seq_secs / met_secs,
        });
        #[cfg(feature = "parallel")]
        for threads in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool builds");
            let par_cfg = config
                .clone()
                .with_parallelism(congest_sim::Parallelism::Parallel);
            let (par_secs, par_rounds, par_out) =
                pool.install(|| e8_time_run(&g, &par_cfg, rounds, work, measurement));
            assert_eq!(par_rounds, sim_rounds, "parallel round count diverged");
            assert_eq!(par_out, seq_out, "parallel outputs diverged at n={n}");
            rows.push(E8Row {
                n,
                edges,
                rounds: par_rounds,
                mode: "parallel".into(),
                threads,
                secs_per_run: par_secs,
                rounds_per_sec: par_rounds as f64 / par_secs,
                speedup_vs_sequential: seq_secs / par_secs,
            });
        }
    }
    for r in &rows {
        table.push(vec![
            r.n.to_string(),
            r.edges.to_string(),
            r.rounds.to_string(),
            r.mode.clone(),
            r.threads.to_string(),
            format!("{:.2?}", std::time::Duration::from_secs_f64(r.secs_per_run)),
            format!("{:.0}", r.rounds_per_sec),
            format!("{:.2}", r.speedup_vs_sequential),
        ]);
    }
    let seed_list: Vec<u64> = ns.iter().map(|&n| 8800 + n as u64).collect();
    let report = E8Report {
        experiment: "E8".into(),
        meta: wdr_metrics::RunMeta::capture(&seed_list),
        host_threads,
        parallel_feature: cfg!(feature = "parallel"),
        rows,
        metrics: registry.snapshot().to_pairs(),
    };
    std::fs::create_dir_all(out_dir).expect("create E8 output dir");
    let path = out_dir.join("BENCH_step_engine.json");
    std::fs::write(
        &path,
        serde_json::to_string(&report).expect("E8 report serializes"),
    )
    .expect("write BENCH_step_engine.json");
    table.commentary = format!(
        "Wall-clock throughput of `Network::step` on dense gossip (every node \
         broadcasts a 64-bit digest each round and burns {work} mixer iterations \
         locally). The `sequential+metrics` row re-times the engine with a live \
         `SimMetrics` bundle attached and is asserted within noise (≤1.5×) of the \
         bare row; its registry snapshot is embedded in the JSON. Parallel rows \
         fan the compute phase over a pinned rayon pool; \
         outputs are asserted bit-identical to the sequential engine before any \
         row is reported. Speedups only materialize with real cores — this host \
         reports {host_threads} (recorded as `host_threads` in \
         BENCH_step_engine.json; on a single-core host the parallel rows measure \
         scheduling overhead, not speedup). Parallel feature compiled: {}.",
        cfg!(feature = "parallel"),
    );
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![path.display().to_string()],
    }
}

/// One timed E9 configuration, serialized into `BENCH_metrics_kernels.json`.
#[derive(Clone, Debug, serde::Serialize)]
struct E9Row {
    n: usize,
    edges: usize,
    density: String,
    max_weight: u64,
    kernel: String,
    sweeps: usize,
    sweep_fraction: f64,
    secs_per_run: f64,
    speedup_vs_brute: f64,
}

/// The machine-readable E9 report (`BENCH_metrics_kernels.json`).
#[derive(Clone, Debug, serde::Serialize)]
struct E9Report {
    experiment: String,
    meta: wdr_metrics::RunMeta,
    host_threads: usize,
    parallel_feature: bool,
    rows: Vec<E9Row>,
}

/// Times one ground-truth kernel under the criterion loop and returns
/// (mean seconds per run, the kernel's result).
fn e9_time(
    measurement: std::time::Duration,
    mut kernel: impl FnMut() -> congest_graph::SweepResult,
) -> (f64, congest_graph::SweepResult) {
    let mut crit = criterion::Criterion::default().measurement_time(measurement);
    let mut last = None;
    crit.bench_function("e9", |b| b.iter(|| last = Some(kernel())));
    let secs = crit
        .last_measurement()
        .expect("bench_function records a measurement")
        .as_secs_f64();
    (secs, last.expect("kernel ran at least once"))
}

/// E9: ground-truth kernel throughput — the seed's brute-force `n`-sweep
/// extremes vs the pruned SumSweep computer (vs, with `--features
/// parallel`, the rayon fan-out) across size/density/weight regimes.
/// Writes `BENCH_metrics_kernels.json` under `out_dir`.
pub fn e9(quick: bool, out_dir: &std::path::Path) -> ExperimentOutput {
    use congest_graph::sweep::{self, EdgeMetric};
    let host_threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let (ns, measurement) = if quick {
        (vec![128, 256, 512], std::time::Duration::from_millis(40))
    } else {
        (
            vec![128, 256, 512, 1024],
            std::time::Duration::from_millis(250),
        )
    };
    let n_max = *ns.last().expect("non-empty size sweep");
    // Densities are average-degree multiples of ln n (connectivity scale);
    // weights straddle the workspace's Dial/heap switchover at W = 128
    // (deep buckets, the boundary, and the binary-heap regime). Uniform
    // weights (W = 1) are deliberately absent: they make sparse ER graphs
    // near-regular — every eccentricity within 1–2 of the rest — which is
    // the documented worst case where bound pruning degrades toward the
    // brute-force fallback (see `congest_graph::sweep`); the unweighted
    // metric is covered by the equivalence proptests instead.
    let densities = [("sparse", 2.0f64), ("dense", 6.0f64)];
    let weights = [32u64, 128, 1024];
    let mut table = Table::new(
        "E9",
        "Ground-truth kernel throughput: brute-force n sweeps vs pruned SumSweep",
        &[
            "n",
            "edges",
            "density",
            "W",
            "kernel",
            "sweeps",
            "sweep frac",
            "time/run",
            "speedup",
        ],
    );
    let mut rows: Vec<E9Row> = Vec::new();
    let mut seed_list: Vec<u64> = Vec::new();
    for &n in &ns {
        for &(dname, mult) in &densities {
            for &w in &weights {
                let p = (mult * (n as f64).ln() / n as f64).min(1.0);
                let seed = 9900 + 17 * n as u64 + 3 * w + mult as u64;
                seed_list.push(seed);
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let g = generators::erdos_renyi_connected(n, p, w, &mut rng);
                let edges = g.m();
                let (brute_secs, brute) = e9_time(measurement, || {
                    sweep::brute_force_extremes(&g, EdgeMetric::Weighted)
                });
                let (ss_secs, ss) = e9_time(measurement, || sweep::extremes(&g));
                assert_eq!(ss.diameter, brute.diameter, "diameter diverged at n={n}");
                assert_eq!(ss.radius, brute.radius, "radius diverged at n={n}");
                assert!(
                    n < 512 || 4 * ss.sweeps <= n,
                    "SumSweep needed {}/{n} sweeps on {dname} W={w} — pruning regressed",
                    ss.sweeps
                );
                let speedup = brute_secs / ss_secs;
                assert!(
                    n < n_max || speedup >= 3.0,
                    "SumSweep speedup {speedup:.1}× < 3× at n={n} {dname} W={w}"
                );
                rows.push(E9Row {
                    n,
                    edges,
                    density: dname.into(),
                    max_weight: w,
                    kernel: "brute".into(),
                    sweeps: brute.sweeps,
                    sweep_fraction: 1.0,
                    secs_per_run: brute_secs,
                    speedup_vs_brute: 1.0,
                });
                rows.push(E9Row {
                    n,
                    edges,
                    density: dname.into(),
                    max_weight: w,
                    kernel: "sumsweep".into(),
                    sweeps: ss.sweeps,
                    sweep_fraction: ss.sweeps as f64 / n as f64,
                    secs_per_run: ss_secs,
                    speedup_vs_brute: speedup,
                });
                #[cfg(feature = "parallel")]
                {
                    let (par_secs, par) = e9_time(measurement, || {
                        sweep::par_brute_force_extremes(&g, EdgeMetric::Weighted)
                    });
                    assert_eq!(par, brute, "parallel kernel diverged at n={n}");
                    rows.push(E9Row {
                        n,
                        edges,
                        density: dname.into(),
                        max_weight: w,
                        kernel: "parallel-brute".into(),
                        sweeps: par.sweeps,
                        sweep_fraction: 1.0,
                        secs_per_run: par_secs,
                        speedup_vs_brute: brute_secs / par_secs,
                    });
                }
            }
        }
    }
    for r in &rows {
        table.push(vec![
            r.n.to_string(),
            r.edges.to_string(),
            r.density.clone(),
            r.max_weight.to_string(),
            r.kernel.clone(),
            r.sweeps.to_string(),
            format!("{:.3}", r.sweep_fraction),
            format!("{:.2?}", std::time::Duration::from_secs_f64(r.secs_per_run)),
            format!("{:.1}", r.speedup_vs_brute),
        ]);
    }
    let report = E9Report {
        experiment: "E9".into(),
        meta: wdr_metrics::RunMeta::capture(&seed_list),
        host_threads,
        parallel_feature: cfg!(feature = "parallel"),
        rows,
    };
    std::fs::create_dir_all(out_dir).expect("create E9 output dir");
    let path = out_dir.join("BENCH_metrics_kernels.json");
    std::fs::write(
        &path,
        serde_json::to_string(&report).expect("E9 report serializes"),
    )
    .expect("write BENCH_metrics_kernels.json");
    table.commentary = format!(
        "The ground-truth layer every experiment leans on. `brute` is the seed \
         semantics (one Dijkstra per node, n sweeps); `sumsweep` answers the same \
         four queries (D, R, both witnesses) from eccentricity bounds, certifying \
         exactness after the listed sweep count — asserted equal to brute on every \
         configuration, ≤ n/4 sweeps at n ≥ 512, and ≥ 3× faster at n = {n_max}. \
         Weights straddle the Dial bucket-queue cutoff (W ≤ {}) so both SSSP inner \
         kernels are exercised. Parallel rows (feature-compiled: {}) fan the brute \
         sweeps over rayon with an index-ordered reduction, asserted bit-identical.",
        congest_graph::DIAL_MAX_WEIGHT,
        cfg!(feature = "parallel"),
    );
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![path.display().to_string()],
    }
}

/// One E10 load-mix measurement, serialized into `BENCH_serve.json`.
#[derive(Clone, Debug, serde::Serialize)]
struct E10Row {
    workers: usize,
    mix: String,
    clients: usize,
    requests: usize,
    completed: usize,
    rejected: usize,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    hit_rate: f64,
}

/// The machine-readable E10 report (`BENCH_serve.json`).
#[derive(Clone, Debug, serde::Serialize)]
struct E10Report {
    experiment: String,
    meta: wdr_metrics::RunMeta,
    host_threads: usize,
    rows: Vec<E10Row>,
    /// Derived cross-row metrics: `e10.scaling.speedup` is cold-mix qps
    /// at the widest worker count over one worker.
    metrics: Vec<(String, f64)>,
}

/// E10: sustained serving throughput — an in-process `wdr-serve` daemon
/// at 1/2/4/8 workers under the `wdr-load` closed loop, on a cache-cold
/// mix (unique scenario per request: raw kernel + graph-build throughput)
/// and a cache-hot repeat mix (fixed 8-entry working set: the
/// content-addressed cache must hold ≥ 90% hit rate). Writes
/// `BENCH_serve.json` under `out_dir`.
pub fn e10(quick: bool, out_dir: &std::path::Path) -> ExperimentOutput {
    use wdr_serve::{loadgen, LoadConfig, MixKind, ServeConfig, Server};
    let host_threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let worker_counts = [1usize, 2, 4, 8];
    let (clients, requests) = if quick { (4, 160) } else { (8, 800) };
    let mut table = Table::new(
        "E10",
        "Sustained serving throughput: wdr-serve under the wdr-load closed loop",
        &[
            "workers", "mix", "clients", "requests", "qps", "p50", "p99", "hit rate", "rejected",
        ],
    );
    let mut rows: Vec<E10Row> = Vec::new();
    let mut seed_list: Vec<u64> = Vec::new();
    let mut cold_qps: Vec<(usize, f64)> = Vec::new();
    for &workers in &worker_counts {
        let registry = wdr_metrics::MetricsRegistry::new();
        let handle = Server::spawn(
            ServeConfig {
                workers,
                queue_capacity: 256,
                ..ServeConfig::default()
            },
            &registry,
        )
        .expect("spawn wdr-serve for E10");
        let addr = handle.addr().to_string();
        let seed = 10_000 + workers as u64;
        seed_list.push(seed);
        for mix in [MixKind::Cold, MixKind::Repeat] {
            let report = loadgen::run(&LoadConfig {
                addr: addr.clone(),
                clients,
                requests,
                mix,
                seed,
                n: Some(48),
                deadline: None,
            })
            .expect("E10 load run");
            assert_eq!(
                report.errors,
                0,
                "E10 load errored at workers={workers} mix={}",
                mix.name()
            );
            assert_eq!(
                report.completed, requests,
                "E10 closed loop finished every request"
            );
            if mix == MixKind::Repeat {
                assert!(
                    report.hit_rate >= 0.90,
                    "repeat-mix hit rate {:.3} < 0.90 at workers={workers}",
                    report.hit_rate
                );
            } else {
                cold_qps.push((workers, report.qps));
            }
            rows.push(E10Row {
                workers,
                mix: mix.name().into(),
                clients,
                requests,
                completed: report.completed,
                rejected: report.rejected,
                qps: report.qps,
                p50_us: report.p50_us,
                p99_us: report.p99_us,
                hit_rate: report.hit_rate,
            });
        }
        handle.shutdown();
    }
    let single = cold_qps.first().map_or(1.0, |&(_, q)| q);
    let widest = cold_qps.last().map_or(1.0, |&(_, q)| q);
    let speedup = widest / single.max(1e-9);
    // Like E8's scaling gate: the ≥ 4× claim only binds where the host can
    // physically provide it; the measurement is recorded regardless.
    assert!(
        host_threads < 8 || speedup >= 4.0,
        "cold-mix scaling {speedup:.2}× at 8 workers < 4× on a {host_threads}-thread host"
    );
    for r in &rows {
        table.push(vec![
            r.workers.to_string(),
            r.mix.clone(),
            r.clients.to_string(),
            r.requests.to_string(),
            format!("{:.0}", r.qps),
            format!("{}µs", r.p50_us),
            format!("{}µs", r.p99_us),
            format!("{:.3}", r.hit_rate),
            r.rejected.to_string(),
        ]);
    }
    let report = E10Report {
        experiment: "E10".into(),
        meta: wdr_metrics::RunMeta::capture(&seed_list),
        host_threads,
        rows,
        metrics: vec![("e10.scaling.speedup".to_string(), speedup)],
    };
    std::fs::create_dir_all(out_dir).expect("create E10 output dir");
    let path = out_dir.join("BENCH_serve.json");
    std::fs::write(
        &path,
        serde_json::to_string(&report).expect("E10 report serializes"),
    )
    .expect("write BENCH_serve.json");
    table.commentary = format!(
        "Each row is one closed-loop run ({clients} clients, {requests} requests) \
         against a fresh in-process daemon. `cold` issues a unique scenario per \
         request with the cache bypassed (the cache is content-addressed, so \
         unique seeds alone would still dedup identical family graphs) — every \
         query builds a graph and runs its kernel, and qps measures raw serving \
         compute; `repeat` cycles a fixed 8-entry working set, so \
         steady state is almost entirely cache hits (asserted ≥ 0.90) and qps \
         measures the cache/protocol path. Cold-mix scaling at 8 workers vs 1 is \
         recorded as e10.scaling.speedup = {speedup:.2}× (gated ≥ 4× only on hosts \
         with ≥ 8 threads; this host reports {host_threads}). Latencies are \
         client-observed microseconds over TCP loopback.",
    );
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![path.display().to_string()],
    }
}

/// One E11 giant-scale pipeline measurement, serialized into
/// `BENCH_giant.json`.
#[derive(Clone, Debug, serde::Serialize)]
struct E11Row {
    family: String,
    n: usize,
    edges: usize,
    gen_ms: f64,
    load_ms: f64,
    /// Generation time over mmap-load time — how much the binary format
    /// saves over regenerating (gated ≥ 50× by assertion, recorded here).
    load_ratio: f64,
    kernel: String,
    sweeps: usize,
    sweep_fraction: f64,
    solve_secs: f64,
    /// Settled nodes per second across all sweeps of the run.
    nodes_per_sec: f64,
    diameter: u64,
    radius: u64,
}

/// The machine-readable E11 report (`BENCH_giant.json`).
#[derive(Clone, Debug, serde::Serialize)]
struct E11Report {
    experiment: String,
    meta: wdr_metrics::RunMeta,
    host_threads: usize,
    parallel_feature: bool,
    rows: Vec<E11Row>,
}

/// E11: million-node graph scale — the full giant-graph pipeline. Each
/// family is generated edge-by-edge through the streaming `GraphWriter`
/// (never a materialized edge list), written to the versioned binary
/// format, and reopened via `open_mmap`; the mapped view, the owned
/// original, the u32-index `CompactGraph`, and (with `--features
/// parallel`) the batched rayon SumSweep must all agree exactly. Gates:
/// mmap reload ≥ 50× faster than regenerating, pruned SumSweep certifies
/// within n/4 sweeps. Writes `BENCH_giant.json` under `out_dir`.
pub fn e11(quick: bool, out_dir: &std::path::Path) -> ExperimentOutput {
    use congest_graph::generators::stream::StreamSpec;
    use congest_graph::sweep::{self, EdgeMetric};
    use congest_graph::CompactGraph;
    use std::time::Instant;
    let host_threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    // Small weights keep every sweep on the Dial bucket-queue fast path —
    // the regime the bitset frontiers were built for.
    let max_w = 16u64;
    let sizes_for = |family: &str| -> Vec<usize> {
        if quick {
            vec![100_000]
        } else if family == "road_grid" {
            // Radius certification on grid-like families needs Θ(√n)
            // sweeps (near-tied central eccentricities — the documented
            // pruning worst case, see `congest_graph::sweep`), so the grid
            // stops at 2·10⁵ to keep the full sweep tractable; the
            // streaming/mmap pipeline runs at 10⁶ on the other families.
            vec![100_000, 200_000]
        } else {
            vec![100_000, 1_000_000]
        }
    };
    let spec_for = |family: &str, n: usize| -> StreamSpec {
        let seed = 11_000 + n as u64;
        match family {
            "power_law" => StreamSpec::PowerLaw {
                n,
                attach: 10,
                max_w,
                seed,
            },
            "road_grid" => StreamSpec::RoadGrid { n, max_w, seed },
            _ => StreamSpec::WebLayered {
                n,
                layers: 32,
                fanout: 3,
                max_w,
                seed,
            },
        }
    };
    let graph_dir = std::env::temp_dir().join(format!("wdrg-e11-{}", std::process::id()));
    std::fs::create_dir_all(&graph_dir).expect("create E11 graph dir");
    let mut table = Table::new(
        "E11",
        "Giant-graph pipeline: streamed generation, binary mmap reload, SumSweep at n up to 10^6",
        &[
            "family",
            "n",
            "edges",
            "gen",
            "load",
            "gen/load",
            "kernel",
            "sweeps",
            "sweep frac",
            "solve",
            "Mnodes/s",
        ],
    );
    let mut rows: Vec<E11Row> = Vec::new();
    let mut seed_list: Vec<u64> = Vec::new();
    for family in ["power_law", "road_grid", "web_layered"] {
        for n in sizes_for(family) {
            let spec = spec_for(family, n);
            seed_list.push(11_000 + n as u64);
            let t0 = Instant::now();
            let g = spec.build().expect("streamed family builds");
            let gen_secs = t0.elapsed().as_secs_f64();
            let edges = g.m();

            let path = graph_dir.join(format!("{family}_{n}.wdrg"));
            g.write_binary(&path).expect("write binary graph");
            let t1 = Instant::now();
            let mapped =
                congest_graph::WeightedGraph::open_mmap(&path).expect("mmap-open binary graph");
            // Clamp to ≥ 1µs: the O(header) open can undercut the timer.
            let load_secs = t1.elapsed().as_secs_f64().max(1e-6);
            let load_ratio = gen_secs / load_secs;
            assert!(
                load_ratio >= 50.0,
                "mmap load must beat regeneration ≥ 50×, got {load_ratio:.1}× \
                 on {family} n={n} (gen {gen_secs:.3}s, load {load_secs:.6}s)"
            );
            assert_eq!(
                mapped, g,
                "mapped CSR diverged from the generator on {family} n={n}"
            );

            // Sequential SumSweep on the mapped view, cross-checked against
            // the owned original and the u32-index compact layout — the
            // kernels must not be able to tell the storages apart.
            let t2 = Instant::now();
            let ss = sweep::extremes(&mapped);
            let solve_secs = t2.elapsed().as_secs_f64().max(1e-9);
            let ss_owned = sweep::extremes(&g);
            assert_eq!(
                ss, ss_owned,
                "mapped vs owned SumSweep diverged on {family} n={n}"
            );
            assert!(
                4 * ss.sweeps <= n,
                "SumSweep needed {}/{n} sweeps on {family} — pruning regressed",
                ss.sweeps
            );
            let compact = CompactGraph::from_graph(&g).expect("family fits u32 indices");
            let t3 = Instant::now();
            let ss_compact = sweep::extremes(&compact);
            let compact_secs = t3.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(
                ss_compact, ss,
                "compact-layout SumSweep diverged on {family} n={n}"
            );
            let mut push = |kernel: &str, res: congest_graph::SweepResult, secs: f64| {
                rows.push(E11Row {
                    family: family.to_string(),
                    n,
                    edges,
                    gen_ms: gen_secs * 1e3,
                    load_ms: load_secs * 1e3,
                    load_ratio,
                    kernel: kernel.to_string(),
                    sweeps: res.sweeps,
                    sweep_fraction: res.sweeps as f64 / n as f64,
                    solve_secs: secs,
                    nodes_per_sec: res.sweeps as f64 * n as f64 / secs,
                    diameter: res.diameter.expect_finite(),
                    radius: res.radius.expect_finite(),
                });
            };
            push("sumsweep", ss, solve_secs);
            push("sumsweep-compact", ss_compact, compact_secs);
            #[cfg(feature = "parallel")]
            {
                let t4 = Instant::now();
                let par = sweep::par_extremes_with(&mapped, EdgeMetric::Weighted, 4);
                let par_secs = t4.elapsed().as_secs_f64().max(1e-9);
                assert_eq!(
                    (par.diameter, par.radius),
                    (ss.diameter, ss.radius),
                    "batched parallel SumSweep answers diverged on {family} n={n}"
                );
                push("parallel-sumsweep", par, par_secs);
            }
            #[cfg(not(feature = "parallel"))]
            let _ = EdgeMetric::Weighted;
        }
    }
    std::fs::remove_dir_all(&graph_dir).ok();
    for r in &rows {
        table.push(vec![
            r.family.clone(),
            r.n.to_string(),
            r.edges.to_string(),
            format!("{:.0}ms", r.gen_ms),
            format!("{:.3}ms", r.load_ms),
            format!("{:.0}×", r.load_ratio),
            r.kernel.clone(),
            r.sweeps.to_string(),
            format!("{:.5}", r.sweep_fraction),
            format!("{:.2?}", std::time::Duration::from_secs_f64(r.solve_secs)),
            format!("{:.2}", r.nodes_per_sec / 1e6),
        ]);
    }
    let report = E11Report {
        experiment: "E11".into(),
        meta: wdr_metrics::RunMeta::capture(&seed_list),
        host_threads,
        parallel_feature: cfg!(feature = "parallel"),
        rows,
    };
    std::fs::create_dir_all(out_dir).expect("create E11 output dir");
    let path = out_dir.join("BENCH_giant.json");
    std::fs::write(
        &path,
        serde_json::to_string(&report).expect("E11 report serializes"),
    )
    .expect("write BENCH_giant.json");
    table.commentary = format!(
        "The scale ceiling, measured end to end. Each family streams its edges \
         through the two-pass `GraphWriter` (no intermediate edge list), lands in \
         the versioned binary format, and reopens via `open_mmap` in O(header) \
         time — asserted ≥ 50× faster than regenerating, and typically far more. \
         The mapped view, the owned original, and the u32-index compact layout \
         are asserted to produce byte-identical SumSweep results, and pruning \
         must certify D and R within n/4 sweeps at every size. Weights stay ≤ \
         {max_w} so every sweep runs the Dial bucket queue with bitset \
         frontiers. The grid family is capped at 2·10⁵ nodes: certifying the \
         radius of a grid takes Θ(√n) sweeps (near-tied central \
         eccentricities, the documented pruning worst case), which is a \
         property of the family, not the pipeline. Parallel rows \
         (feature-compiled: {}) run the batched rayon SumSweep, asserted to \
         agree on D and R exactly.",
        cfg!(feature = "parallel"),
    );
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![path.display().to_string()],
    }
}

/// One E12 lane-count measurement, serialized into `BENCH_batch.json`.
#[derive(Clone, Debug, serde::Serialize)]
struct E12Row {
    lanes: usize,
    wall_secs: f64,
    setup_secs: f64,
    execute_secs: f64,
    scenarios_per_sec: f64,
    /// Sequential wall time over this row's wall time.
    speedup: f64,
    /// Scenarios that reused a setup built by an earlier lane-mate.
    shared_setups: usize,
}

/// The machine-readable E12 report (`BENCH_batch.json`).
#[derive(Clone, Debug, serde::Serialize)]
struct E12Report {
    experiment: String,
    meta: wdr_metrics::RunMeta,
    host_threads: usize,
    scenarios: usize,
    groups: usize,
    sequential_secs: f64,
    /// Speedup at the widest lane count (the gated trajectory ratio).
    batch_speedup: f64,
    /// The widest lane count measured (informational).
    lane_count: usize,
    rows: Vec<E12Row>,
    metrics: Vec<(String, f64)>,
}

/// E12: batch-engine throughput — the many-seed conformance corpus run in
/// lockstep through `wdr_conformance::batch`. The whole corpus runs once
/// one-at-a-time (the reference), then batched at 1/2/4/8 lanes; every
/// batched run must be bit-identical to the reference
/// (`runner::fingerprint` equality — verdicts, measurements, envelope
/// fits, metric snapshot values), and on hosts with ≥ 8 threads the
/// 8-lane run must be ≥ 5× faster. Writes `BENCH_batch.json`.
pub fn e12(quick: bool, out_dir: &std::path::Path) -> ExperimentOutput {
    use std::time::Instant;
    use wdr_conformance::runner::{self, SuiteOptions};
    let host_threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let count: u64 = if quick { 48 } else { 500 };
    let specs = runner::generate_corpus(count);
    let groups = wdr_conformance::batch::group_by_graph(&specs).len();
    let run = |lanes: Option<usize>| {
        let options = SuiteOptions {
            lanes,
            ..SuiteOptions::default()
        };
        let t0 = Instant::now();
        let report = runner::run_suite(&specs, &options);
        (report, t0.elapsed().as_secs_f64())
    };

    let (seq_report, seq_secs) = run(None);
    assert!(
        seq_report.passed(),
        "E12 reference corpus run failed: {:?}",
        seq_report.failures
    );
    let reference = runner::fingerprint(&seq_report);

    let mut table = Table::new(
        "E12",
        "Batch-engine throughput: graph-grouped lockstep corpus execution vs one-at-a-time",
        &[
            "lanes",
            "wall",
            "setup",
            "execute",
            "scen/s",
            "speedup",
            "shared setups",
        ],
    );
    let mut rows: Vec<E12Row> = Vec::new();
    let push_row = |lanes: usize,
                    wall: f64,
                    setup: f64,
                    execute: f64,
                    shared: usize,
                    rows: &mut Vec<E12Row>| {
        rows.push(E12Row {
            lanes,
            wall_secs: wall,
            setup_secs: setup,
            execute_secs: execute,
            scenarios_per_sec: specs.len() as f64 / wall.max(1e-9),
            speedup: seq_secs / wall.max(1e-9),
            shared_setups: shared,
        });
    };
    let seq_shared = seq_report.timings.iter().filter(|t| t.shared_setup).count();
    push_row(
        0,
        seq_secs,
        seq_report.setup_secs(),
        seq_report.execute_secs(),
        seq_shared,
        &mut rows,
    );
    let mut batch_speedup = 0.0f64;
    let mut lane_count = 0usize;
    for lanes in [1usize, 2, 4, 8] {
        let (report, wall) = run(Some(lanes));
        assert_eq!(
            runner::fingerprint(&report),
            reference,
            "E12: batched corpus run at {lanes} lanes diverged from the sequential reference"
        );
        let shared = report.timings.iter().filter(|t| t.shared_setup).count();
        push_row(
            lanes,
            wall,
            report.setup_secs(),
            report.execute_secs(),
            shared,
            &mut rows,
        );
        batch_speedup = seq_secs / wall.max(1e-9);
        lane_count = lanes;
    }
    // The throughput gate, host-conditional like E8/E10: ≥ 5× at 8 lanes
    // (target ~10×) only means something with ≥ 8 hardware threads.
    assert!(
        host_threads < 8 || batch_speedup >= 5.0,
        "E12: batched corpus run at {lane_count} lanes is only {batch_speedup:.2}× \
         faster than one-at-a-time on a {host_threads}-thread host (gate ≥ 5×)"
    );

    for r in &rows {
        table.push(vec![
            if r.lanes == 0 {
                "seq".to_string()
            } else {
                r.lanes.to_string()
            },
            format!("{:.2}s", r.wall_secs),
            format!("{:.2}s", r.setup_secs),
            format!("{:.2}s", r.execute_secs),
            format!("{:.1}", r.scenarios_per_sec),
            format!("{:.2}×", r.speedup),
            r.shared_setups.to_string(),
        ]);
    }
    let seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
    let metrics = vec![
        ("e12.batch_speedup".to_string(), batch_speedup),
        ("e12.lane_count".to_string(), lane_count as f64),
        ("e12.scenarios".to_string(), specs.len() as f64),
        ("e12.groups".to_string(), groups as f64),
    ];
    let report = E12Report {
        experiment: "E12".into(),
        meta: wdr_metrics::RunMeta::capture(&seeds),
        host_threads,
        scenarios: specs.len(),
        groups,
        sequential_secs: seq_secs,
        batch_speedup,
        lane_count,
        rows,
        metrics,
    };
    std::fs::create_dir_all(out_dir).expect("create E12 output dir");
    let path = out_dir.join("BENCH_batch.json");
    std::fs::write(
        &path,
        serde_json::to_string(&report).expect("E12 report serializes"),
    )
    .expect("write BENCH_batch.json");
    table.commentary = format!(
        "The {count}-seed conformance corpus collapses into {groups} graph groups \
         (deterministic families share one graph + cached metrics across seeds; \
         seeded-random families stay singleton but still amortize D/extremes \
         across the two oracle replays). Every batched run is asserted \
         bit-identical to the sequential reference — same verdicts, round \
         measurements, envelope fits, and metric snapshot values — so the only \
         thing lanes can change is wall time. The 8-lane speedup {batch_speedup:.2}× \
         is recorded as e12.batch_speedup (gated ≥ 5× only on hosts with ≥ 8 \
         threads; this host reports {host_threads}).",
    );
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![path.display().to_string()],
    }
}

/// One E13 ablation-job row, serialized into `BENCH_ablate.json`.
/// `ratio`/`hard_ok`/`soft_ok` are absent (`null`) on jobs that surfaced
/// the typed round-budget error — the expected outcome under faults.
#[derive(Clone, Debug, serde::Serialize)]
struct E13Row {
    job: String,
    eps: f64,
    fault_rate: f64,
    max_weight: u64,
    ratio: Option<f64>,
    hard_ok: Option<f64>,
    soft_ok: Option<f64>,
    failed: f64,
    error: Option<String>,
}

/// The machine-readable E13 report (`BENCH_ablate.json`).
#[derive(Clone, Debug, serde::Serialize)]
struct E13Report {
    experiment: String,
    meta: wdr_metrics::RunMeta,
    plan: String,
    plan_hash: String,
    substrate: String,
    mode: String,
    passed: bool,
    rows: Vec<E13Row>,
    metrics: Vec<(String, f64)>,
}

/// E13: declarative ablation of the quantum estimator — ε × weight-class ×
/// fault-rate over the checked-in `crates/ablate/plans/e13.ron` plan, run
/// through the `wdr-ablate` harness. The canonical runbook must be
/// byte-identical across lane counts (the harness's core contract), every
/// tolerance must hold, and the per-job sandwich evidence lands in
/// `BENCH_ablate.json` for the perf trajectory.
pub fn e13(quick: bool, out_dir: &std::path::Path) -> ExperimentOutput {
    use wdr_ablate::{plan_hash, to_canonical_json_bytes, RunOptions};
    const SEED: u64 = 101;
    let plan_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../ablate/plans/e13.ron");
    let text = std::fs::read_to_string(plan_path).expect("read crates/ablate/plans/e13.ron");
    let plan = wdr_ablate::plan::parse(&text).expect("parse E13 ablation plan");

    let run = |lanes: Option<usize>| {
        wdr_ablate::run_ablation_with(&plan, SEED, &RunOptions { lanes, meta: None })
            .expect("E13 ablation run")
    };
    let reference = run(None);
    let reference_bytes = to_canonical_json_bytes(&reference).expect("canonicalize E13 runbook");
    let lane_counts: &[usize] = if quick { &[4] } else { &[1, 2, 4] };
    for &lanes in lane_counts {
        let batched = run(Some(lanes));
        assert_eq!(
            to_canonical_json_bytes(&batched).expect("canonicalize E13 runbook"),
            reference_bytes,
            "E13: runbook at {lanes} lanes diverged from the sequential reference"
        );
    }
    let violations: Vec<String> = reference
        .verdicts
        .iter()
        .filter(|v| !v.ok)
        .map(|v| format!("{} on {}: {}", v.metric, v.job_id, v.detail))
        .collect();
    assert!(
        reference.passed,
        "E13: checked-in plan tolerances violated: {violations:?}"
    );

    let p_f64 = |j: &wdr_ablate::report::JobReport, key: &str| {
        j.params
            .get(key)
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(f64::NAN)
    };
    let rows: Vec<E13Row> = reference
        .jobs
        .iter()
        .map(|j| E13Row {
            job: j.id.clone(),
            eps: p_f64(j, "eps"),
            fault_rate: p_f64(j, "fault_rate"),
            max_weight: p_f64(j, "max_weight") as u64,
            ratio: j.metrics.get("ratio").copied(),
            hard_ok: j.metrics.get("hard_ok").copied(),
            soft_ok: j.metrics.get("soft_ok").copied(),
            failed: j.metrics.get("failed").copied().unwrap_or(1.0),
            error: j.error.clone(),
        })
        .collect();
    let job_errors = rows.iter().filter(|r| r.error.is_some()).count();
    let worst_ratio = rows.iter().filter_map(|r| r.ratio).fold(0.0f64, f64::max);
    let metrics = vec![
        ("e13.jobs".to_string(), rows.len() as f64),
        ("e13.job_errors".to_string(), job_errors as f64),
        ("e13.violations".to_string(), violations.len() as f64),
        ("e13.worst_ratio".to_string(), worst_ratio),
    ];

    let mut table = Table::new(
        "E13",
        "Ablation harness: ε × weight-class × fault-rate sweep of the quantum estimator \
         (byte-deterministic runbook, tolerance-gated)",
        &[
            "job", "eps", "fault", "W", "ratio", "hard", "soft", "status",
        ],
    );
    let flag = |v: Option<f64>| match v {
        Some(x) if x >= 1.0 => "yes".to_string(),
        Some(_) => "NO".to_string(),
        None => "—".to_string(),
    };
    for r in &rows {
        table.push(vec![
            r.job.clone(),
            format!("{}", r.eps),
            format!("{}", r.fault_rate),
            r.max_weight.to_string(),
            r.ratio.map_or("—".to_string(), |x| format!("{x:.4}")),
            flag(r.hard_ok),
            flag(r.soft_ok),
            if r.error.is_some() {
                "round budget".to_string()
            } else {
                "ok".to_string()
            },
        ]);
    }
    table.commentary = format!(
        "The checked-in plan (`crates/ablate/plans/e13.ron`, hash {hash}) expands to \
         {jobs} grid jobs over ε ∈ {{0.08, 0.2, 0.45}} × W ∈ {{1, 8, 4096}} × fault \
         rate ∈ {{0, 0.04}} on the shared 18-node calibration grid. The runbook is \
         asserted byte-identical between the sequential path and every batched lane \
         count — provenance, fingerprints, metric snapshots and all — so the report \
         itself is the regression artifact. Clean jobs must land in the Theorem 1.1 \
         sandwich (hard/soft flags gated at 1.0; worst ratio {worst:.4} against the \
         (1+ε)² ≤ 2.10 theoretical cap); the {errs} faulted jobs surface the typed \
         round-budget error, the conformance oracle's acceptable-under-faults \
         outcome, and are excluded from the ratio gates by construction.",
        hash = plan_hash(&plan),
        jobs = rows.len(),
        worst = worst_ratio,
        errs = job_errors,
    );

    let report = E13Report {
        experiment: "E13".into(),
        meta: wdr_metrics::RunMeta::capture(&[SEED]),
        plan: plan.name.clone(),
        plan_hash: plan_hash(&plan),
        substrate: reference.substrate.clone(),
        mode: reference.mode.clone(),
        passed: reference.passed,
        rows,
        metrics,
    };
    std::fs::create_dir_all(out_dir).expect("create E13 output dir");
    let path = out_dir.join("BENCH_ablate.json");
    std::fs::write(
        &path,
        serde_json::to_string(&report).expect("E13 report serializes"),
    )
    .expect("write BENCH_ablate.json");
    let runbook_path = out_dir.join("e13_runbook.json");
    std::fs::write(&runbook_path, &reference_bytes).expect("write e13_runbook.json");
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![
            path.display().to_string(),
            runbook_path.display().to_string(),
        ],
    }
}

/// F1–F4: regenerate the paper's figures (structural tables + DOT files).
pub fn figures(out_dir: &std::path::Path) -> ExperimentOutput {
    use congest_graph::dot;
    std::fs::create_dir_all(out_dir).expect("create figure dir");
    let mut out = ExperimentOutput::default();
    let dims = GadgetDims::new(2);
    let (alpha, beta) = paper_weights(&dims);
    let x = vec![true; dims.input_len()];
    let y = vec![true; dims.input_len()];

    let mut t = Table::new(
        "F1-F4",
        "Figures 1–4 regenerated: structural invariants + DOT artifacts",
        &["figure", "construction", "nodes", "check"],
    );
    // F1 + F2.
    let g = diameter_gadget(&dims, &x, &y, alpha, beta);
    let d_g = metrics::unweighted_diameter(&g.graph);
    t.push(vec![
        "Fig 1".into(),
        format!(
            "tree h={} + {} paths × {} nodes",
            dims.h,
            2 * dims.s + dims.ell,
            1 << dims.h
        ),
        format!(
            "{}",
            (1 << (dims.h + 1)) - 1 + ((2 * dims.s + dims.ell) as usize) * (1 << dims.h)
        ),
        "leaf-path wiring verified by construction tests".into(),
    ]);
    t.push(vec![
        "Fig 2".into(),
        format!("diameter gadget, α={alpha}, β={beta}"),
        format!("{} (formula {})", g.graph.n(), node_count(&dims, false)),
        format!("D_G = {d_g} = Θ(log n) ✓"),
    ]);
    assert_eq!(g.graph.n(), node_count(&dims, false));
    let dot_path = out_dir.join("figure2.dot");
    std::fs::write(
        &dot_path,
        dot::to_dot(&g.graph, &dot::DotOptions::named("figure2")),
    )
    .unwrap();
    out.artifacts.push(dot_path.display().to_string());

    // F3.
    let c = contract::contract_unit_edges(&g.graph);
    let expect = 1 + (2 * dims.s + dims.ell) as usize + 2 * dims.blocks();
    assert_eq!(c.graph.n(), expect);
    t.push(vec![
        "Fig 3".into(),
        "weight-1 contraction G′".into(),
        format!("{} (expected {expect})", c.graph.n()),
        "tree→t, path+endpoints→router, Table 2 bounds verified in tests ✓".into(),
    ]);
    let dot_path = out_dir.join("figure3.dot");
    std::fs::write(
        &dot_path,
        dot::to_dot(&c.graph, &dot::DotOptions::named("figure3")),
    )
    .unwrap();
    out.artifacts.push(dot_path.display().to_string());

    // F4.
    let r = radius_gadget(&dims, &x, &y, alpha, beta);
    let cr = contract::contract_unit_edges(&r.graph);
    // Caption check: e(v) ≥ 3α for every contracted node except the a_i.
    let apsp = congest_graph::shortest_path::apsp(&cr.graph);
    let mut non_center_min = u64::MAX;
    for v in 0..r.graph.n() {
        let kind = r.layout.kind(v);
        let img = cr.image(v);
        let ecc = apsp[img].iter().copied().max().unwrap().expect_finite();
        if !matches!(kind, GadgetNode::A(_)) {
            non_center_min = non_center_min.min(ecc);
        }
    }
    assert!(
        non_center_min >= 3 * alpha,
        "Figure 4 caption: e(v) ≥ 3α off the a_i"
    );
    t.push(vec![
        "Fig 4".into(),
        "radius gadget (a₀ of weight 2α to every a_i)".into(),
        format!("{}", r.graph.n()),
        format!(
            "min eccentricity off {{a_i}} = {non_center_min} ≥ 3α = {} ✓",
            3 * alpha
        ),
    ]);
    let dot_path = out_dir.join("figure4.dot");
    std::fs::write(
        &dot_path,
        dot::to_dot(&r.graph, &dot::DotOptions::named("figure4")),
    )
    .unwrap();
    out.artifacts.push(dot_path.display().to_string());

    out.tables.push(t);
    out
}

/// A1: the Grover substitution, validated — analytic `sin²((2j+1)θ)` vs the
/// statevector simulator.
pub fn a1() -> ExperimentOutput {
    let mut t = Table::new(
        "A1",
        "Grover model validation: analytic success probability vs 6-qubit statevector",
        &["iterations j", "analytic", "statevector", "|Δ|"],
    );
    let marked = |i: usize| i == 17;
    let rho = 1.0 / 64.0;
    let mut max_err = 0.0f64;
    for j in 0..=8u32 {
        let analytic = quantum_sim::grover::success_probability(rho, u64::from(j));
        let s = quantum_sim::statevector::grover_state(6, marked, j);
        let measured = s.success_probability(marked);
        let err = (analytic - measured).abs();
        max_err = max_err.max(err);
        t.push(vec![
            j.to_string(),
            format!("{analytic:.6}"),
            format!("{measured:.6}"),
            format!("{err:.2e}"),
        ]);
    }
    assert!(max_err < 1e-9);
    t.commentary = format!(
        "Max deviation {max_err:.1e}: the analytic model used at CONGEST scale is the \
         exact amplitude dynamics (DESIGN.md §1)."
    );
    ExperimentOutput {
        tables: vec![t],
        artifacts: vec![],
    }
}

/// A2: the toolkit's measured rounds against the Appendix A lemma bounds.
pub fn a2(quick: bool) -> ExperimentOutput {
    let n = if quick { 32 } else { 64 };
    let g = family(n, 4, 5000);
    let d = metrics::unweighted_diameter(&g);
    let scheme = RoundingScheme::new(n / 2, 0.5);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let skeleton: Vec<usize> = (0..n).step_by(n / 6).collect();
    let b = skeleton.len();
    let mut t = Table::new(
        "A2",
        "Toolkit fidelity: measured rounds vs the Appendix A bounds (unit constants)",
        &[
            "algorithm",
            "lemma",
            "measured rounds",
            "bound expression",
            "bound value",
        ],
    );
    let limit = scheme.threshold().floor() as u64;
    let scales = scheme.max_scale(n, g.max_weight()) + 1;

    let (_, s1) = bounded_hop_sssp(&g, 0, 0, scheme, &cfg(&g)).expect("alg1");
    let bound1 = (limit as usize + 1) * scales as usize;
    t.push(vec![
        "Alg 1 (bounded-hop SSSP)".into(),
        "A.1: Õ(ℓ/ε)".into(),
        s1.rounds.to_string(),
        "(L+1)·#scales".into(),
        bound1.to_string(),
    ]);
    assert!(s1.rounds <= bound1 + 10);

    let ms = multi_source_bounded_hop(&g, 0, &skeleton, scheme, &cfg(&g), &mut rng).expect("alg3");
    let logn = (n as f64).log2().ceil() as usize;
    let bound3 = (d + bound1 + b * logn + b + 4) * (logn + 1) + 3 * d + 2 * b + 20;
    t.push(vec![
        format!("Alg 3 (multi-source, b={b})"),
        "A.2: Õ(D + ℓ/ε + b)".into(),
        ms.stats.rounds.to_string(),
        "(D + (L+1)·#scales + b·log n)·(log n+1) + O(D+b)".into(),
        bound3.to_string(),
    ]);
    assert!(ms.stats.rounds <= bound3, "{} > {bound3}", ms.stats.rounds);

    let k = 3;
    let emb = embed_overlay(&g, 0, &skeleton, scheme, k, &cfg(&g), &mut rng).expect("alg4");
    let alg4_rounds = emb.stats.rounds.saturating_sub(ms.stats.rounds);
    t.push(vec![
        format!("Alg 4 (embedding, k={k})"),
        "A.3: Õ(D + |S|k)".into(),
        format!("{alg4_rounds} (incl. repeated Alg 3)"),
        "O(D + |S|·k) after Alg 3".into(),
        format!("{}", 8 * (d + b * k) + 60),
    ]);

    let (_, s5) = overlay_sssp(&g, 0, &emb, skeleton[0], &cfg(&g)).expect("alg5");
    let ell2 = emb.overlay_ell;
    let l5 = ((1.0 + 2.0 / scheme.eps) * ell2 as f64) as usize;
    let bound5 = (l5 + 1) * 20 * (3 * d + b + 12);
    t.push(vec![
        "Alg 5 (overlay SSSP)".into(),
        "A.4: Õ(|S|/(εk)·D + |S|)".into(),
        s5.rounds.to_string(),
        "(L'+1)·#scales'·O(D + a)".into(),
        bound5.to_string(),
    ]);

    t.commentary = "Every toolkit phase lands within its lemma's bound with small \
        constants; the measured numbers are what E1/E2 charge per quantum oracle \
        application."
        .into();
    ExperimentOutput {
        tables: vec![t],
        artifacts: vec![],
    }
}

/// A3: accuracy ablation — the eccentricity approximation error as a
/// function of the skeleton rate and hop budget (motivates Eq. (1)).
pub fn a3(quick: bool) -> ExperimentOutput {
    let n = if quick { 40 } else { 64 };
    // A long-hop topology (weighted cycle): shortest paths have Θ(n) hops,
    // so an undersized ℓ visibly breaks the Lemma 3.3 decomposition.
    let g = {
        let mut rng = ChaCha8Rng::seed_from_u64(6000);
        generators::randomize_weights(&generators::cycle(n, 1), MAX_W, &mut rng)
    };
    let mut t = Table::new(
        "A3",
        "Ablation: max ẽ/e over skeleton vs (r, ℓ) — why Eq. (1) picks ℓ = n·log n/r",
        &["r (|S|)", "ℓ", "max ratio ẽ/e", "within (1+ε)²"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(61);
    for &r in &[4usize, 8, 16] {
        for &ell_factor in &[0.02f64, 0.25, 1.0] {
            let ell = (((n as f64) * (n as f64).log2() / r as f64) * ell_factor).ceil() as usize;
            let scheme = RoundingScheme::new(ell.max(1), EPS);
            let skeleton =
                congest_graph::overlay::sample_skeleton(n, r as f64 / n as f64, &mut rng);
            if skeleton.len() < 2 {
                continue;
            }
            let sd = SkeletonDistances::compute(&g, &skeleton, scheme, 3);
            let mut worst = 0.0f64;
            for &s in &sd.skeleton {
                let e = metrics::eccentricity(&g, s).as_f64();
                let a = sd.approx_eccentricity(s);
                if e > 0.0 {
                    worst = worst.max(a / e);
                }
            }
            let ok = worst <= (1.0 + EPS) * (1.0 + EPS) + 1e-9;
            t.push(vec![
                format!("{r} ({})", skeleton.len()),
                ell.to_string(),
                if worst.is_finite() {
                    format!("{worst:.4}")
                } else {
                    "∞ (coverage lost)".into()
                },
                if ok {
                    "✓".into()
                } else {
                    "✗ (ℓ too small)".into()
                },
            ]);
        }
    }
    t.commentary = "Small ℓ relative to n·log n/r can push ẽ outside the guarantee \
        (the skeleton decomposition of Lemma 3.3 fails); the paper's choice restores it."
        .into();
    ExperimentOutput {
        tables: vec![t],
        artifacts: vec![],
    }
}

/// A4: §1.1's motivating claim — the naive single-level quantum search
/// costs `Θ̃(n)`; the paper's two-level scheme beats it.
pub fn a4() -> ExperimentOutput {
    let mut t = Table::new(
        "A4",
        "Naive single-level search (√n evaluations × √n-round eccentricity) vs Theorem 1.1",
        &[
            "n",
            "D",
            "naive √n·√n = n",
            "two-level n^0.9·D^0.3",
            "speedup",
        ],
    );
    for &(n, d) in &[
        (1usize << 12, 12usize),
        (1 << 16, 16),
        (1 << 20, 20),
        (1 << 26, 26),
        (1 << 32, 32),
    ] {
        let naive = n as f64;
        let two = cost::quantum_weighted_upper(n, d, Polylog::Drop);
        t.push(vec![
            n.to_string(),
            d.to_string(),
            format!("{naive:.0}"),
            format!("{two:.0}"),
            format!("{:.1}×", naive / two),
        ]);
    }
    t.commentary = "Evaluating one eccentricity takes Θ̃(√n) rounds (lower bound of [10]) \
        and the search needs Θ̃(√n) evaluations, so the naive approach is Θ̃(n); \
        the two-level set-sampling scheme is what makes Theorem 1.1 sublinear."
        .into();
    ExperimentOutput {
        tables: vec![t],
        artifacts: vec![],
    }
}

/// T1: the literal Table 1, evaluated at a representative `(n, D)`.
pub fn t1() -> ExperimentOutput {
    let (n, d) = (1usize << 20, 20usize);
    let mut table = Table::new(
        "T1",
        "Table 1 of the paper, evaluated at n = 2^20, D = 20 (★ = this work)",
        &[
            "problem",
            "variant",
            "approx",
            "classical Õ",
            "quantum Õ",
            "classical Ω̃",
            "quantum Ω̃",
        ],
    );
    let fmt_opt = |o: &Option<(&'static str, f64)>| match o {
        Some((e, v)) => format!("{e} = {v:.0}"),
        None => "open".into(),
    };
    for r in congest_wdr::table_one::rows(n, d) {
        table.push(vec![
            format!("{:?}{}", r.problem, if r.this_work { " ★" } else { "" }),
            format!("{:?}", r.variant),
            r.approx.to_string(),
            format!("{} = {:.0}", r.classical_upper.0, r.classical_upper.1),
            format!("{} = {:.0}", r.quantum_upper.0, r.quantum_upper.1),
            fmt_opt(&r.classical_lower),
            fmt_opt(&r.quantum_lower),
        ]);
    }
    table.commentary = "Row consistency (every lower bound below its upper bound, quantum \
        never above classical) is enforced by `congest-wdr`'s table_one tests."
        .into();
    ExperimentOutput {
        tables: vec![table],
        artifacts: vec![],
    }
}

/// Runs the whole suite in order; `quick` trims sweeps.
pub fn run_all(quick: bool, out_dir: &std::path::Path) -> Vec<ExperimentOutput> {
    vec![
        t1(),
        e1(quick),
        e2(quick),
        e3(quick),
        e4(quick),
        e5(quick),
        e6(quick),
        e7(quick),
        e8(quick, out_dir),
        e9(quick, out_dir),
        e10(quick, out_dir),
        e11(quick, out_dir),
        e12(quick, out_dir),
        figures(out_dir),
        a1(),
        a2(quick),
        a3(quick),
        a4(),
    ]
}
