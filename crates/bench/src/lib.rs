//! # wdr-bench
//!
//! The experiment harness regenerating every table and figure of *Wu & Yao,
//! PODC 2022* (see DESIGN.md §4 for the experiment index E1–E6 / F1–F4 and
//! the supporting ablations A1–A4).
//!
//! The library exposes each experiment as a function returning typed rows;
//! the `tables` binary (and the `tables` bench target run by `cargo bench`)
//! prints them as markdown and writes CSV files under `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod trace;

pub use harness::{write_csv, ExperimentOutput, Table};
