//! Reading JSONL telemetry traces back in and rendering them as tables.
//!
//! [`congest_sim::telemetry::JsonlTracer`] writes one externally tagged
//! [`TraceEvent`] per line; this module parses that format (via the untyped
//! [`serde_json::Value`] tree), rebuilds the phase tree, and renders:
//!
//! * a **phase table** — one row per span, indented by nesting depth, with
//!   subtree and own rounds/messages/bits;
//! * a **hot-edge table** — the heaviest directed channels aggregated over
//!   every [`TraceEvent::ChannelProfile`] in the trace;
//! * a **search table** — one row per [`TraceEvent::GroverIteration`];
//! * a **fault table** — every injected-fault event (drops by reason,
//!   throttle firings, crash/recovery transitions) aggregated.
//!
//! The `wdr-trace` binary is a thin CLI over these functions.

use crate::harness::Table;
use congest_sim::faults::DropReason;
use congest_sim::telemetry::{build_phase_tree, HotEdge, PhaseNode};
use congest_sim::TraceEvent;
use serde_json::Value;
use std::collections::HashMap;

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number in the JSONL input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an integer"))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    Ok(u64_field(v, key)? as usize)
}

fn u32_field(v: &Value, key: &str) -> Result<u32, String> {
    u64_field(v, key)?
        .try_into()
        .map_err(|_| format!("field `{key}` exceeds u32"))
}

fn string_field(v: &Value, key: &str) -> Result<String, String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))?
        .to_string())
}

fn drop_reason_field(v: &Value, key: &str) -> Result<DropReason, String> {
    let s = field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))?;
    match s {
        "Random" => Ok(DropReason::Random),
        "Burst" => Ok(DropReason::Burst),
        "Throttled" => Ok(DropReason::Throttled),
        "ReceiverCrashed" => Ok(DropReason::ReceiverCrashed),
        other => Err(format!("unknown drop reason `{other}`")),
    }
}

/// Decodes one externally tagged event object.
///
/// `SimFailed` payloads are structurally opaque to the report (the error
/// enum's shape is not needed for rendering), so they are preserved as an
/// `Unreachable`-free placeholder: the report only counts them.
fn event_from_value(v: &Value) -> Result<Option<TraceEvent>, String> {
    let obj = v.as_object().ok_or("event line is not a JSON object")?;
    let (tag, body) = obj.iter().next().ok_or("empty event object")?;
    if obj.len() != 1 {
        return Err(format!("expected exactly one tag, got {}", obj.len()));
    }
    let event = match tag.as_str() {
        "PhaseStart" => TraceEvent::PhaseStart {
            name: string_field(body, "name")?,
        },
        "PhaseEnd" => TraceEvent::PhaseEnd {
            name: string_field(body, "name")?,
        },
        "RoundCompleted" => TraceEvent::RoundCompleted {
            round: usize_field(body, "round")?,
            messages: u64_field(body, "messages")?,
            bits: u64_field(body, "bits")?,
            max_channel_bits: u32_field(body, "max_channel_bits")?,
        },
        "PadRounds" => TraceEvent::PadRounds {
            rounds: usize_field(body, "rounds")?,
            reason: string_field(body, "reason")?,
        },
        "ChannelSaturation" => TraceEvent::ChannelSaturation {
            round: usize_field(body, "round")?,
            from: usize_field(body, "from")?,
            to: usize_field(body, "to")?,
            bits: u32_field(body, "bits")?,
            budget_bits: u32_field(body, "budget_bits")?,
        },
        "ChannelProfile" => {
            let edges = field(body, "hot_edges")?
                .as_array()
                .ok_or("`hot_edges` is not an array")?
                .iter()
                .map(|e| {
                    Ok(HotEdge {
                        from: usize_field(e, "from")?,
                        to: usize_field(e, "to")?,
                        bits: u64_field(e, "bits")?,
                    })
                })
                .collect::<Result<Vec<HotEdge>, String>>()?;
            TraceEvent::ChannelProfile {
                channel_rounds: u64_field(body, "channel_rounds")?,
                p50_bits: u32_field(body, "p50_bits")?,
                p95_bits: u32_field(body, "p95_bits")?,
                max_bits: u32_field(body, "max_bits")?,
                hot_edges: edges,
            }
        }
        "MessageDropped" => TraceEvent::MessageDropped {
            round: usize_field(body, "round")?,
            from: usize_field(body, "from")?,
            to: usize_field(body, "to")?,
            bits: u32_field(body, "bits")?,
            reason: drop_reason_field(body, "reason")?,
        },
        "NodeCrashed" => TraceEvent::NodeCrashed {
            node: usize_field(body, "node")?,
            round: usize_field(body, "round")?,
        },
        "NodeRecovered" => TraceEvent::NodeRecovered {
            node: usize_field(body, "node")?,
            round: usize_field(body, "round")?,
        },
        "LinkThrottled" => TraceEvent::LinkThrottled {
            round: usize_field(body, "round")?,
            from: usize_field(body, "from")?,
            to: usize_field(body, "to")?,
            budget_bits: u32_field(body, "budget_bits")?,
        },
        "MessageLogTruncated" => TraceEvent::MessageLogTruncated {
            round: usize_field(body, "round")?,
            cap: usize_field(body, "cap")?,
        },
        "GroverIteration" => TraceEvent::GroverIteration {
            label: string_field(body, "label")?,
            iterations: u64_field(body, "iterations")?,
            oracle_queries: u64_field(body, "oracle_queries")?,
        },
        // The error payload's exact shape is irrelevant to the report;
        // skipping keeps the reader forward-compatible with new variants.
        "SimFailed" => return Ok(None),
        other => return Err(format!("unknown event tag `{other}`")),
    };
    Ok(Some(event))
}

/// Parses a full JSONL trace. Blank lines are skipped; any malformed line is
/// an error (truncated final lines from an unflushed writer included — a
/// trace must be [`congest_sim::Tracer::flush`]ed).
///
/// # Errors
///
/// Returns the first malformed line.
pub fn parse_trace(input: &str) -> Result<Vec<TraceEvent>, TraceParseError> {
    let mut events = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = serde_json::from_str(line).map_err(|e| TraceParseError {
            line: idx + 1,
            message: e.to_string(),
        })?;
        if let Some(event) = event_from_value(&value).map_err(|message| TraceParseError {
            line: idx + 1,
            message,
        })? {
            events.push(event);
        }
    }
    Ok(events)
}

/// Renders the phase tree as a table: one row per span, names indented two
/// spaces per nesting level, subtree totals first (what the paper's `T₀`,
/// `T₁`, `T₂` accounting reads off) and own (exclusive) rounds alongside.
pub fn phase_table(root: &PhaseNode) -> Table {
    let mut t = Table::new(
        "TRACE",
        "Per-phase round/message/bit breakdown",
        &[
            "phase",
            "rounds",
            "own rounds",
            "messages",
            "bits",
            "max chan bits",
        ],
    );
    for (depth, node) in root.walk() {
        let sub = node.subtree();
        t.push(vec![
            format!("{}{}", "  ".repeat(depth), node.name),
            sub.rounds.to_string(),
            node.own.rounds.to_string(),
            sub.messages.to_string(),
            sub.bits.to_string(),
            sub.max_channel_bits.to_string(),
        ]);
    }
    t
}

/// Aggregates every [`TraceEvent::ChannelProfile`] in the trace into one
/// hot-edge table (per-edge bits summed across profiles, `top_k` heaviest).
pub fn hot_edge_table(events: &[TraceEvent], top_k: usize) -> Table {
    let mut t = Table::new(
        "HOTEDGES",
        "Hottest directed channels (total bits, all profiled phases)",
        &["from", "to", "bits"],
    );
    let mut merged: HashMap<(usize, usize), u64> = HashMap::new();
    for event in events {
        if let TraceEvent::ChannelProfile { hot_edges, .. } = event {
            for e in hot_edges {
                *merged.entry((e.from, e.to)).or_insert(0) += e.bits;
            }
        }
    }
    let mut edges: Vec<((usize, usize), u64)> = merged.into_iter().collect();
    edges.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    edges.truncate(top_k);
    for ((from, to), bits) in edges {
        t.push(vec![from.to_string(), to.to_string(), bits.to_string()]);
    }
    t
}

/// Aggregates every fault event in the trace into one table: dropped
/// messages grouped by [`DropReason`] (with total lost bits), throttle
/// firings, crash/recovery transitions, and message-log truncations.
pub fn fault_table(events: &[TraceEvent]) -> Table {
    let mut t = Table::new(
        "FAULTS",
        "Injected faults observed in the trace",
        &["fault", "count", "bits lost"],
    );
    let mut dropped: HashMap<&'static str, (u64, u64)> = HashMap::new();
    let (mut throttled, mut crashes, mut recoveries, mut truncations) = (0u64, 0u64, 0u64, 0u64);
    for event in events {
        match event {
            TraceEvent::MessageDropped { bits, reason, .. } => {
                let label = match reason {
                    DropReason::Random => "dropped (random)",
                    DropReason::Burst => "dropped (burst)",
                    DropReason::Throttled => "dropped (throttled)",
                    DropReason::ReceiverCrashed => "dropped (receiver crashed)",
                };
                let e = dropped.entry(label).or_insert((0, 0));
                e.0 += 1;
                e.1 += u64::from(*bits);
            }
            TraceEvent::LinkThrottled { .. } => throttled += 1,
            TraceEvent::NodeCrashed { .. } => crashes += 1,
            TraceEvent::NodeRecovered { .. } => recoveries += 1,
            TraceEvent::MessageLogTruncated { .. } => truncations += 1,
            _ => {}
        }
    }
    let mut rows: Vec<(&'static str, u64, Option<u64>)> = dropped
        .into_iter()
        .map(|(label, (count, bits))| (label, count, Some(bits)))
        .collect();
    rows.sort_unstable();
    for (label, count, bits) in [
        ("link throttle firings", throttled, None),
        ("node crashes", crashes, None),
        ("node recoveries", recoveries, None),
        ("message-log truncations", truncations, None),
    ] {
        if count > 0 {
            rows.push((label, count, bits));
        }
    }
    for (label, count, bits) in rows {
        t.push(vec![
            label.to_string(),
            count.to_string(),
            bits.map_or_else(|| "-".to_string(), |b| b.to_string()),
        ]);
    }
    t
}

/// One row per [`TraceEvent::GroverIteration`] in the trace.
pub fn search_table(events: &[TraceEvent]) -> Table {
    let mut t = Table::new(
        "SEARCH",
        "Quantum search invocations",
        &["label", "grover iterations", "oracle queries"],
    );
    for event in events {
        if let TraceEvent::GroverIteration {
            label,
            iterations,
            oracle_queries,
        } = event
        {
            t.push(vec![
                label.clone(),
                iterations.to_string(),
                oracle_queries.to_string(),
            ]);
        }
    }
    t
}

/// The full report for a parsed trace, rendered as markdown.
pub fn render_markdown(events: &[TraceEvent]) -> String {
    let tree = build_phase_tree(events);
    let mut out = phase_table(&tree).to_markdown();
    let hot = hot_edge_table(events, 10);
    if !hot.rows.is_empty() {
        out.push('\n');
        out.push_str(&hot.to_markdown());
    }
    let search = search_table(events);
    if !search.rows.is_empty() {
        out.push('\n');
        out.push_str(&search.to_markdown());
    }
    let faults = fault_table(events);
    if !faults.rows.is_empty() {
        out.push('\n');
        out.push_str(&faults.to_markdown());
    }
    out
}

/// The full report for a parsed trace as one JSON array of table objects
/// (the same tables as [`render_markdown`], machine-readable; empty
/// sections are omitted, the phase table always present).
pub fn render_json(events: &[TraceEvent]) -> String {
    let tree = build_phase_tree(events);
    let mut tables = vec![phase_table(&tree)];
    for t in [
        hot_edge_table(events, 10),
        search_table(events),
        fault_table(events),
    ] {
        if !t.rows.is_empty() {
            tables.push(t);
        }
    }
    serde::Serialize::to_json(&tables)
}

/// The full report for a parsed trace, rendered as concatenated CSV blocks.
pub fn render_csv(events: &[TraceEvent]) -> String {
    let tree = build_phase_tree(events);
    let mut out = phase_table(&tree).to_csv();
    let hot = hot_edge_table(events, 10);
    if !hot.rows.is_empty() {
        out.push('\n');
        out.push_str(&hot.to_csv());
    }
    let search = search_table(events);
    if !search.rows.is_empty() {
        out.push('\n');
        out.push_str(&search.to_csv());
    }
    let faults = fault_table(events);
    if !faults.rows.is_empty() {
        out.push('\n');
        out.push_str(&faults.to_csv());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::telemetry::{CollectingTracer, JsonlTracer, Tracer};
    use congest_sim::{primitives, SimConfig, Telemetry};
    use std::sync::Arc;

    #[test]
    fn round_trips_a_real_trace() {
        // Produce a trace by running real primitives, serialize it through
        // the JsonlTracer, and parse it back: must be identical event-wise.
        let g = congest_graph::generators::grid(3, 3, 2);
        let collector = Arc::new(CollectingTracer::default());

        let buf: Arc<std::sync::Mutex<Vec<u8>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
        struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        struct Fanout(Arc<CollectingTracer>, JsonlTracer);
        impl Tracer for Fanout {
            fn record(&self, event: &congest_sim::TraceEvent) {
                self.0.record(event);
                self.1.record(event);
            }
            fn flush(&self) {
                self.1.flush();
            }
        }
        let jsonl = JsonlTracer::new(Box::new(SharedBuf(buf.clone())));
        let telemetry = Telemetry::new(Arc::new(Fanout(collector.clone(), jsonl)));
        let cfg = SimConfig::standard(9, 2)
            .with_telemetry(telemetry.clone())
            .with_channel_profile();

        let (tree, stats) = primitives::bfs_tree(&g, 0, &cfg).unwrap();
        let values: Vec<u128> = (0..9).collect();
        let (_, cast_stats) =
            primitives::converge_cast(&g, 0, &cfg, &tree, &values, primitives::Aggregate::Max)
                .unwrap();
        telemetry.flush();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, collector.events());

        let root = build_phase_tree(&parsed);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.subtree().rounds, stats.rounds + cast_stats.rounds);

        let md = render_markdown(&parsed);
        assert!(md.contains("bfs_tree"));
        assert!(md.contains("converge_cast"));
        assert!(md.contains("Hottest directed channels"));
        let csv = render_csv(&parsed);
        assert!(csv.starts_with("phase,rounds,own rounds,messages,bits,max chan bits"));

        let json = render_json(&parsed);
        let tables = serde_json::from_str(&json).unwrap();
        let tables = tables.as_array().expect("render_json emits an array");
        assert_eq!(
            tables[0].get("id").and_then(serde_json::Value::as_str),
            Some("TRACE")
        );
        assert!(tables
            .iter()
            .any(|t| t.get("id").and_then(serde_json::Value::as_str) == Some("HOTEDGES")));
        let trace_rows = tables[0]
            .get("rows")
            .and_then(serde_json::Value::as_array)
            .unwrap();
        assert!(trace_rows
            .iter()
            .filter_map(|r| r.as_array())
            .any(|r| r[0].as_str().is_some_and(|s| s.contains("bfs_tree"))));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_trace("{\"PhaseStart\":{\"name\":\"a\"}}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_trace("{\"Mystery\":{}}\n").unwrap_err();
        assert!(err.message.contains("unknown event tag"));
        let err = parse_trace("{\"RoundCompleted\":{\"round\":1}}\n").unwrap_err();
        assert!(err.message.contains("missing field"));
        let line = "{\"MessageDropped\":{\"round\":1,\"from\":0,\"to\":1,\"bits\":8,\
                     \"reason\":\"Gremlins\"}}\n";
        let err = parse_trace(line).unwrap_err();
        assert!(err.message.contains("unknown drop reason"));
    }

    #[test]
    fn round_trips_a_faulty_trace_and_reports_the_faults() {
        use congest_algos::resilient::resilient_bfs;
        use congest_sim::reliable::ReliablePolicy;
        use congest_sim::FaultPlan;

        let g = congest_graph::generators::grid(4, 4, 1);
        let collector = Arc::new(CollectingTracer::default());
        let buf: Arc<std::sync::Mutex<Vec<u8>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
        struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        struct Fanout(Arc<CollectingTracer>, JsonlTracer);
        impl Tracer for Fanout {
            fn record(&self, event: &congest_sim::TraceEvent) {
                self.0.record(event);
                self.1.record(event);
            }
            fn flush(&self) {
                self.1.flush();
            }
        }
        let jsonl = JsonlTracer::new(Box::new(SharedBuf(buf.clone())));
        let telemetry = Telemetry::new(Arc::new(Fanout(collector.clone(), jsonl)));
        let cfg = SimConfig::standard(g.n(), 1)
            .with_max_rounds(10_000)
            .with_telemetry(telemetry.clone())
            .with_faults(
                FaultPlan::new(99)
                    .with_drop_rate(0.2)
                    .with_crash(5, 2, Some(4)),
            );
        let run = resilient_bfs(&g, 0, &cfg, ReliablePolicy::default()).unwrap();
        assert!(run.stats.resilience.dropped_messages > 0);
        telemetry.flush();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, collector.events());

        let faults = fault_table(&parsed);
        assert!(faults
            .rows
            .iter()
            .any(|r| r[0] == "dropped (random)" && r[2] != "-"));
        assert!(faults.rows.iter().any(|r| r[0] == "node crashes"));
        assert!(faults.rows.iter().any(|r| r[0] == "node recoveries"));
        let md = render_markdown(&parsed);
        assert!(md.contains("Injected faults observed in the trace"));
        let csv = render_csv(&parsed);
        assert!(csv.contains("dropped (random)"));
        let json = render_json(&parsed);
        assert!(json.contains("\"FAULTS\"") && json.contains("dropped (random)"));
    }

    #[test]
    fn hot_edges_merge_across_profiles() {
        let profile = |bits| TraceEvent::ChannelProfile {
            channel_rounds: 1,
            p50_bits: 1,
            p95_bits: 1,
            max_bits: 1,
            hot_edges: vec![HotEdge {
                from: 0,
                to: 1,
                bits,
            }],
        };
        let t = hot_edge_table(&[profile(10), profile(5)], 10);
        assert_eq!(
            t.rows,
            vec![vec!["0".to_string(), "1".to_string(), "15".to_string()]]
        );
    }
}
