//! Table formatting and CSV emission for the experiment harness.
//!
//! The [`Table`] type itself lives in [`wdr_metrics::table`] (so lower
//! layers — the ablation harness, the perf CLI — can render tables
//! without depending on this crate); it is re-exported here so existing
//! experiment code keeps compiling unchanged.

use std::fs;
use std::path::Path;

pub use wdr_metrics::table::Table;

/// The output of one experiment run: one or more tables plus any artifact
/// files it wrote.
#[derive(Clone, Debug, Default)]
pub struct ExperimentOutput {
    /// The tables.
    pub tables: Vec<Table>,
    /// Paths of extra artifacts (DOT files, …).
    pub artifacts: Vec<String>,
}

/// Writes every table of an output as CSV under `dir`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(out: &ExperimentOutput, dir: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    for t in &out.tables {
        fs::write(dir.join(format!("{}.csv", t.id.to_lowercase())), t.to_csv())?;
    }
    Ok(())
}

/// Least-squares slope of `log(y)` against `log(x)` — the growth-exponent
/// estimator used throughout EXPERIMENTS.md.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2);
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_table_renders() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert!(t.to_markdown().contains("| 1 | 2 |"));
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn slope_of_power_law() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (i * 10) as f64;
                (x, 3.0 * x.powf(0.9))
            })
            .collect();
        assert!((loglog_slope(&pts) - 0.9).abs() < 1e-9);
    }
}
