//! Table formatting and CSV emission for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A rendered experiment: a title, a commentary line, and a rectangular
/// table.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Table {
    /// Experiment id (e.g. "E1").
    pub id: String,
    /// Human title.
    pub title: String,
    /// One-paragraph commentary (what the paper says vs what we measured).
    pub commentary: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            commentary: String::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        writeln!(out, "### {} — {}\n", self.id, self.title).unwrap();
        writeln!(out, "| {} |", self.headers.join(" | ")).unwrap();
        writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )
        .unwrap();
        for row in &self.rows {
            writeln!(out, "| {} |", row.join(" | ")).unwrap();
        }
        if !self.commentary.is_empty() {
            writeln!(out, "\n{}", self.commentary).unwrap();
        }
        out
    }

    /// Renders as one JSON object:
    /// `{"id":…,"title":…,"commentary":…,"headers":[…],"rows":[[…]]}`.
    pub fn to_json(&self) -> String {
        serde::Serialize::to_json(self)
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{}", self.headers.join(",")).unwrap();
        for row in &self.rows {
            writeln!(out, "{}", row.join(",")).unwrap();
        }
        out
    }
}

/// The output of one experiment run: one or more tables plus any artifact
/// files it wrote.
#[derive(Clone, Debug, Default)]
pub struct ExperimentOutput {
    /// The tables.
    pub tables: Vec<Table>,
    /// Paths of extra artifacts (DOT files, …).
    pub artifacts: Vec<String>,
}

/// Writes every table of an output as CSV under `dir`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(out: &ExperimentOutput, dir: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    for t in &out.tables {
        fs::write(dir.join(format!("{}.csv", t.id.to_lowercase())), t.to_csv())?;
    }
    Ok(())
}

/// Least-squares slope of `log(y)` against `log(x)` — the growth-exponent
/// estimator used throughout EXPERIMENTS.md.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2);
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_render() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn json_renders_and_parses() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.commentary = "note \"quoted\"".into();
        t.push(vec!["1".into(), "2".into()]);
        let v = serde_json::from_str(&t.to_json()).expect("table JSON parses");
        assert_eq!(v.get("id").and_then(serde_json::Value::as_str), Some("E0"));
        let rows = v.get("rows").and_then(serde_json::Value::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        let row0 = rows[0].as_array().expect("row is an array");
        assert_eq!(row0[1].as_str(), Some("2"));
        assert_eq!(
            v.get("commentary").and_then(serde_json::Value::as_str),
            Some("note \"quoted\"")
        );
    }

    #[test]
    #[should_panic(expected = "width")]
    fn row_width_checked() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn slope_of_power_law() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (i * 10) as f64;
                (x, 3.0 * x.powf(0.9))
            })
            .collect();
        assert!((loglog_slope(&pts) - 0.9).abs() < 1e-9);
    }
}
