//! The ISSUE acceptance path, end to end: a `three_halves` run traced
//! through `JsonlTracer` produces a file with at least three named phases
//! whose per-phase rounds sum to the reported `RoundStats.rounds`, and
//! `wdr-trace`'s renderer turns it into markdown.

use congest_algos::three_halves::three_halves_diameter;
use congest_graph::generators;
use congest_sim::telemetry::{build_phase_tree, JsonlTracer};
use congest_sim::{SimConfig, Telemetry};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use wdr_bench::trace::{parse_trace, render_csv, render_json, render_markdown};

#[test]
fn three_halves_jsonl_trace_renders_to_markdown() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = generators::erdos_renyi_connected(20, 0.15, 3, &mut rng);

    let dir = std::env::temp_dir().join("wdr-trace-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("three_halves.jsonl");
    let tracer = JsonlTracer::create(&path).unwrap();
    let telemetry = Telemetry::new(Arc::new(tracer));
    let cfg = SimConfig::standard(g.n(), g.max_weight())
        .with_max_rounds(10_000_000)
        .with_telemetry(telemetry.clone())
        .with_channel_profile();

    let res = three_halves_diameter(&g, 0, &cfg, &mut rng).unwrap();
    telemetry.flush();

    // Parse the file back exactly as the wdr-trace binary does.
    let text = std::fs::read_to_string(&path).unwrap();
    let events = parse_trace(&text).unwrap();
    let tree = build_phase_tree(&events);
    let algo = &tree.children[0];
    assert_eq!(algo.name, "three_halves");
    assert!(
        algo.children.len() >= 3,
        "want ≥3 named phases, got {}",
        algo.children.len()
    );
    assert_eq!(algo.subtree().rounds, res.stats.rounds);

    let md = render_markdown(&events);
    assert!(md.contains("| phase | rounds |"));
    assert!(md.contains("three_halves"));
    assert!(md.contains("sample_bfs"));
    assert!(md.contains("Hottest directed channels"));

    let csv = render_csv(&events);
    assert!(csv.lines().count() > algo.children.len());

    // The --json output mode: one parseable array of table objects.
    let json = render_json(&events);
    let tables = serde_json::from_str(&json).unwrap();
    let tables = tables.as_array().expect("JSON report is an array");
    assert_eq!(
        tables[0].get("id").and_then(serde_json::Value::as_str),
        Some("TRACE")
    );
    assert!(json.contains("three_halves"));
}

/// The fault-injection acceptance path: a faulty `resilient_bfs` run traced
/// to a JSONL file shows its drop and crash events in the `wdr-trace`
/// rendering.
#[test]
fn faulty_run_shows_fault_events_in_wdr_trace_output() {
    use congest_algos::resilient::resilient_bfs;
    use congest_sim::reliable::ReliablePolicy;
    use congest_sim::{FaultPlan, TraceEvent};

    let g = generators::grid(4, 4, 1);
    let dir = std::env::temp_dir().join("wdr-trace-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("faulty_bfs.jsonl");
    let tracer = JsonlTracer::create(&path).unwrap();
    let telemetry = Telemetry::new(Arc::new(tracer));
    let cfg = SimConfig::standard(g.n(), 1)
        .with_max_rounds(10_000)
        .with_telemetry(telemetry.clone())
        .with_faults(
            FaultPlan::new(99)
                .with_drop_rate(0.2)
                .with_crash(5, 2, Some(4)),
        );
    let run = resilient_bfs(&g, 0, &cfg, ReliablePolicy::default()).unwrap();
    assert!(run.stats.resilience.dropped_messages > 0);
    telemetry.flush();

    let text = std::fs::read_to_string(&path).unwrap();
    let events = parse_trace(&text).unwrap();
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::MessageDropped { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::NodeCrashed { .. })));

    let md = render_markdown(&events);
    assert!(md.contains("resilient_bfs"));
    assert!(md.contains("Injected faults observed in the trace"));
    assert!(md.contains("dropped (random)"));
    assert!(md.contains("node crashes"));
}
