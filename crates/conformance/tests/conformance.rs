//! Property tests of the conformance subsystem itself: the corpus format
//! must round-trip, scenario generation must be a pure function of the
//! seed, and the shrinker must terminate. The checked-in `tests/corpus/`
//! at the workspace root is additionally pinned byte-for-byte against the
//! generator, so a drive-by edit to either side fails loudly.

use proptest::prelude::*;
use wdr_conformance::runner::generate_corpus;
use wdr_conformance::scenario::{FaultSpec, ScenarioSpec, Workload};
use wdr_conformance::{corpus, oracle};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_ron ∘ parse` is the identity on every generatable spec.
    #[test]
    fn ron_roundtrips(seed in any::<u64>()) {
        let spec = ScenarioSpec::from_seed(seed);
        let text = corpus::to_ron(&spec);
        let parsed = corpus::parse(&text).expect("canonical RON parses");
        prop_assert_eq!(parsed, spec);
    }

    /// Scenario generation is a pure function of the seed: regenerating
    /// yields an identical spec, and the derived graph is bit-identical.
    #[test]
    fn from_seed_is_pure(seed in any::<u64>()) {
        let a = ScenarioSpec::from_seed(seed);
        let b = ScenarioSpec::from_seed(seed);
        prop_assert_eq!(a, b);
        let (ga, gb) = (a.build_graph(), b.build_graph());
        prop_assert_eq!(ga.n(), gb.n());
        prop_assert_eq!(ga, gb);
    }

    /// Every spec is normalized at generation time: re-normalizing is a
    /// no-op, and baselines are always fault-free.
    #[test]
    fn generated_specs_are_normal_forms(seed in any::<u64>()) {
        let spec = ScenarioSpec::from_seed(seed);
        prop_assert_eq!(spec.normalized(), spec);
        if spec.workload == Workload::BaselineExact {
            prop_assert_eq!(spec.faults, FaultSpec::NoFaults);
        }
    }

    /// Shrink candidates strictly decrease the size measure, so greedy
    /// shrinking terminates from any starting spec.
    #[test]
    fn shrinking_strictly_decreases(seed in any::<u64>()) {
        let spec = ScenarioSpec::from_seed(seed);
        for candidate in spec.shrink_candidates() {
            prop_assert!(candidate.size_measure() < spec.size_measure());
            // Candidates stay inside the generatable envelope: still
            // normalized, still buildable.
            prop_assert_eq!(candidate.normalized(), candidate);
            let _ = candidate.build_graph();
        }
    }

    /// The per-`n` tolerance is the paper's `o(1)` term made explicit:
    /// positive, monotone non-increasing, and vanishing in `n`.
    #[test]
    fn o1_tolerance_shrinks(n in 4usize..4096) {
        let t = oracle::o1_tolerance(n);
        prop_assert!(t > 0.0);
        prop_assert!(t <= oracle::o1_tolerance(n / 2));
        prop_assert!(oracle::o1_tolerance(n * 1024) < t);
    }
}

/// The checked-in corpus is exactly `generate_corpus(500)` serialized —
/// regenerate with `wdr-conform gen --count 500 --out tests/corpus` after
/// any deliberate generator change.
#[test]
fn checked_in_corpus_matches_generator() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let loaded = corpus::load_corpus(&dir).expect("workspace corpus loads");
    let expected = generate_corpus(500);
    assert_eq!(loaded.len(), expected.len(), "corpus file count drifted");
    for (got, want) in loaded.iter().zip(&expected) {
        assert_eq!(got, want, "seed {} drifted from the generator", want.seed);
    }
}

/// A pinned clean scenario passes every oracle end-to-end (fast smoke:
/// one baseline seed, exercised without the CLI).
#[test]
fn pinned_baseline_seed_passes_all_oracles() {
    let spec = generate_corpus(48)
        .into_iter()
        .find(|s| s.workload == Workload::BaselineExact)
        .expect("corpus contains a baseline scenario");
    let outcome = oracle::run_scenario(&spec);
    assert!(
        outcome.failures().is_empty(),
        "baseline seed {} failed: {:?}",
        spec.seed,
        outcome.failures()
    );
}
