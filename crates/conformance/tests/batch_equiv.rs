//! Batch == sequential bit-identity, pinned by proptest (the same
//! discipline as `parallel_equiv.rs` in the simulator): for random
//! families × lane counts × fault plans, the batch engine must reproduce
//! the one-at-a-time path exactly — oracle verdicts and details, round
//! counts, soft-side flags, envelope fits, and the embedded metric
//! snapshot values. Timings are the only permitted difference.

use proptest::prelude::*;
use quantum_sim::mutation::Mutation;
use wdr_conformance::runner::{self, fingerprint, SuiteOptions};
use wdr_conformance::scenario::{ScenarioSpec, Workload};

/// Seed → spec, with quantum node counts clamped so debug-mode test runs
/// stay fast. The clamp preserves the seed-derived variety (family, fault
/// plan, parallelism) that the equivalence property must range over.
fn spec_for(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::from_seed(seed);
    if matches!(
        spec.workload,
        Workload::QuantumDiameter | Workload::QuantumRadius
    ) && spec.n > 12
    {
        spec.n = 8 + (seed % 5) as usize;
    }
    spec.normalized()
}

/// Runs the suite and returns its semantic fingerprint plus the live
/// registry snapshot (the counters the lanes incremented).
fn run_path(
    specs: &[ScenarioSpec],
    lanes: Option<usize>,
    mutate: Option<Mutation>,
) -> (bool, String, std::collections::BTreeMap<String, f64>) {
    let registry = wdr_metrics::MetricsRegistry::new();
    let options = SuiteOptions {
        lanes,
        mutate,
        registry: Some(registry.clone()),
        ..SuiteOptions::default()
    };
    let report = runner::run_suite(specs, &options);
    let snapshot = registry.snapshot().flatten().into_iter().collect();
    (report.passed(), fingerprint(&report), snapshot)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The core pin: any spec mix, any lane count — batched results are
    /// bit-identical to sequential (verdicts, measurements, envelope, and
    /// metric snapshot values all equal).
    #[test]
    fn batch_matches_sequential_across_families(
        seeds in proptest::collection::vec(any::<u64>(), 2..6),
        lanes in 1usize..=4,
    ) {
        let specs: Vec<ScenarioSpec> = seeds.iter().copied().map(spec_for).collect();
        let (seq_pass, seq_fp, seq_snap) = run_path(&specs, None, None);
        let (bat_pass, bat_fp, bat_snap) = run_path(&specs, Some(lanes), None);
        prop_assert_eq!(seq_pass, bat_pass);
        prop_assert_eq!(seq_fp, bat_fp, "fingerprint diverged at {} lanes", lanes);
        prop_assert_eq!(seq_snap, bat_snap, "metric snapshots diverged at {} lanes", lanes);
    }

    /// Lane-count invariance: the batched path agrees with itself across
    /// different lane counts (scheduling never leaks into results).
    #[test]
    fn batch_is_lane_count_invariant(seed in any::<u64>()) {
        let specs: Vec<ScenarioSpec> = (0..4).map(|i| spec_for(seed.wrapping_add(i))).collect();
        let (_, fp1, snap1) = run_path(&specs, Some(1), None);
        let (_, fp3, snap3) = run_path(&specs, Some(3), None);
        prop_assert_eq!(fp1, fp3);
        prop_assert_eq!(snap1, snap3);
    }
}

/// A real corpus prefix (seeds 0..16, the CI smoke slice) runs identically
/// through both paths, and the batch path actually shares setups.
#[test]
fn batch_corpus_prefix_equals_sequential() {
    let specs = runner::generate_corpus(16);
    let registry = wdr_metrics::MetricsRegistry::new();
    let seq = runner::run_suite(
        &specs,
        &SuiteOptions {
            registry: Some(registry.clone()),
            ..SuiteOptions::default()
        },
    );
    let bat = runner::run_suite(
        &specs,
        &SuiteOptions {
            lanes: Some(4),
            ..SuiteOptions::default()
        },
    );
    assert_eq!(fingerprint(&seq), fingerprint(&bat));
    assert_eq!(seq.outcomes.len(), bat.outcomes.len());
    assert_eq!(bat.timings.len(), specs.len());
    // Timing satellite: every scenario carries a breakdown, corpus order.
    for (t, s) in bat.timings.iter().zip(&specs) {
        assert_eq!(t.seed, s.seed);
        assert!(t.execute_secs >= 0.0 && t.setup_secs >= 0.0);
    }
}

/// The mutation self-check keeps its teeth under batching: an armed
/// `SkipGroverPhase` makes both paths fail, with identical evidence
/// (per-lane guard installation works).
#[test]
fn batch_mutation_self_check_equivalence() {
    // Enough clean quantum scenarios for the soft-side aggregate to fire.
    let specs: Vec<ScenarioSpec> = (0..200)
        .map(spec_for)
        .filter(|s| {
            s.is_clean()
                && matches!(
                    s.workload,
                    Workload::QuantumDiameter | Workload::QuantumRadius
                )
        })
        .take(6)
        .collect();
    assert!(specs.len() >= 4, "need enough clean quantum specs");
    let mutate = Some(Mutation::SkipGroverPhase);
    let (seq_pass, seq_fp, _) = run_path(&specs, None, mutate);
    let (bat_pass, bat_fp, _) = run_path(&specs, Some(3), mutate);
    assert!(!seq_pass, "mutated sequential run must fail");
    assert!(!bat_pass, "mutated batched run must fail");
    assert_eq!(seq_fp, bat_fp);
}
