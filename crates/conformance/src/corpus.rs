//! The on-disk corpus format: one scenario per `*.ron` file under
//! `tests/corpus/`, in a hand-rolled subset of RON (no `ron` crate is
//! vendored). The grammar covers exactly what [`ScenarioSpec`] needs —
//! named structs, tuple-ish variants with named fields, unit variants,
//! unsigned integers, and floats:
//!
//! ```text
//! Scenario(
//!     seed: 42,
//!     family: ErdosRenyi(p: 0.3),
//!     n: 16,
//!     max_weight: 8,
//!     faults: Drops(rate: 0.04),
//!     parallelism: Sequential,
//!     workload: QuantumDiameter,
//! )
//! ```
//!
//! Floats are written with Rust's shortest-roundtrip formatting, so
//! `parse(to_ron(spec)) == spec` exactly (property-tested).

use crate::scenario::{Family, FaultSpec, ParMode, ScenarioSpec, Workload};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Serializes a spec into the corpus format.
pub fn to_ron(spec: &ScenarioSpec) -> String {
    let mut s = String::new();
    writeln!(s, "Scenario(").unwrap();
    writeln!(s, "    seed: {},", spec.seed).unwrap();
    let family = match spec.family {
        Family::Path => "Path".to_string(),
        Family::Cycle => "Cycle".to_string(),
        Family::Star => "Star".to_string(),
        Family::Grid => "Grid".to_string(),
        Family::BinaryTree => "BinaryTree".to_string(),
        Family::ErdosRenyi { p } => format!("ErdosRenyi(p: {p:?})"),
        Family::ClusterRing { hubs } => format!("ClusterRing(hubs: {hubs})"),
    };
    writeln!(s, "    family: {family},").unwrap();
    writeln!(s, "    n: {},", spec.n).unwrap();
    writeln!(s, "    max_weight: {},", spec.max_weight).unwrap();
    let faults = match spec.faults {
        FaultSpec::NoFaults => "NoFaults".to_string(),
        FaultSpec::Drops { rate } => format!("Drops(rate: {rate:?})"),
        FaultSpec::Crash { node, from, len } => {
            format!("Crash(node: {node}, from: {from}, len: {len})")
        }
    };
    writeln!(s, "    faults: {faults},").unwrap();
    let par = match spec.parallelism {
        ParMode::Sequential => "Sequential",
        ParMode::Parallel => "Parallel",
    };
    writeln!(s, "    parallelism: {par},").unwrap();
    let wl = match spec.workload {
        Workload::BaselineExact => "BaselineExact",
        Workload::QuantumDiameter => "QuantumDiameter",
        Workload::QuantumRadius => "QuantumRadius",
        Workload::PrimitiveAggregate => "PrimitiveAggregate",
    };
    writeln!(s, "    workload: {wl},").unwrap();
    s.push_str(")\n");
    s
}

/// A parse failure: what was expected, and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    UInt(u64),
    Float(f64),
    LParen,
    RParen,
    Colon,
    Comma,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'/' if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        self.skip_ws();
        let Some(&c) = self.src.get(self.pos) else {
            return Ok(Tok::Eof);
        };
        match c {
            b'(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            b':' => {
                self.pos += 1;
                Ok(Tok::Colon)
            }
            b',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            b'0'..=b'9' => {
                let start = self.pos;
                let mut is_float = false;
                while self.pos < self.src.len() {
                    match self.src[self.pos] {
                        b'0'..=b'9' => self.pos += 1,
                        b'.' | b'e' | b'E' | b'-' | b'+' if self.pos > start => {
                            is_float = true;
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                if is_float {
                    text.parse::<f64>()
                        .map(Tok::Float)
                        .map_err(|e| self.err(format!("bad float '{text}': {e}")))
                } else {
                    text.parse::<u64>()
                        .map(Tok::UInt)
                        .map_err(|e| self.err(format!("bad integer '{text}': {e}")))
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = self.pos;
                while self
                    .src
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    self.pos += 1;
                }
                Ok(Tok::Ident(
                    std::str::from_utf8(&self.src[start..self.pos])
                        .unwrap()
                        .to_string(),
                ))
            }
            other => Err(self.err(format!("unexpected byte '{}'", other as char))),
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(self.err(format!("expected {want:?}, found {got:?}")))
        }
    }

    fn expect_field(&mut self, name: &str) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Ident(id) if id == name => self.expect(&Tok::Colon),
            other => Err(self.err(format!("expected field '{name}', found {other:?}"))),
        }
    }

    fn uint(&mut self) -> Result<u64, ParseError> {
        match self.next()? {
            Tok::UInt(v) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    fn float(&mut self) -> Result<f64, ParseError> {
        match self.next()? {
            Tok::Float(v) => Ok(v),
            Tok::UInt(v) => Ok(v as f64),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(id) => Ok(id),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Field separator inside `(...)`: a comma (possibly trailing).
    fn sep(&mut self) -> Result<(), ParseError> {
        self.expect(&Tok::Comma)
    }
}

/// Parses one scenario from the corpus format. Fields must appear in the
/// canonical [`to_ron`] order (the corpus is machine-written; a fixed
/// order keeps the parser and diffs simple).
pub fn parse(text: &str) -> Result<ScenarioSpec, ParseError> {
    let mut lx = Lexer::new(text);
    match lx.next()? {
        Tok::Ident(id) if id == "Scenario" => {}
        other => return Err(lx.err(format!("expected 'Scenario', found {other:?}"))),
    }
    lx.expect(&Tok::LParen)?;
    lx.expect_field("seed")?;
    let seed = lx.uint()?;
    lx.sep()?;
    lx.expect_field("family")?;
    let family = match lx.ident()?.as_str() {
        "Path" => Family::Path,
        "Cycle" => Family::Cycle,
        "Star" => Family::Star,
        "Grid" => Family::Grid,
        "BinaryTree" => Family::BinaryTree,
        "ErdosRenyi" => {
            lx.expect(&Tok::LParen)?;
            lx.expect_field("p")?;
            let p = lx.float()?;
            lx.expect(&Tok::RParen)?;
            Family::ErdosRenyi { p }
        }
        "ClusterRing" => {
            lx.expect(&Tok::LParen)?;
            lx.expect_field("hubs")?;
            let hubs = lx.uint()? as usize;
            lx.expect(&Tok::RParen)?;
            Family::ClusterRing { hubs }
        }
        other => return Err(lx.err(format!("unknown family '{other}'"))),
    };
    lx.sep()?;
    lx.expect_field("n")?;
    let n = lx.uint()? as usize;
    lx.sep()?;
    lx.expect_field("max_weight")?;
    let max_weight = lx.uint()?;
    lx.sep()?;
    lx.expect_field("faults")?;
    let faults = match lx.ident()?.as_str() {
        "NoFaults" => FaultSpec::NoFaults,
        "Drops" => {
            lx.expect(&Tok::LParen)?;
            lx.expect_field("rate")?;
            let rate = lx.float()?;
            lx.expect(&Tok::RParen)?;
            FaultSpec::Drops { rate }
        }
        "Crash" => {
            lx.expect(&Tok::LParen)?;
            lx.expect_field("node")?;
            let node = lx.uint()? as usize;
            lx.sep()?;
            lx.expect_field("from")?;
            let from = lx.uint()? as usize;
            lx.sep()?;
            lx.expect_field("len")?;
            let len = lx.uint()? as usize;
            lx.expect(&Tok::RParen)?;
            FaultSpec::Crash { node, from, len }
        }
        other => return Err(lx.err(format!("unknown fault spec '{other}'"))),
    };
    lx.sep()?;
    lx.expect_field("parallelism")?;
    let parallelism = match lx.ident()?.as_str() {
        "Sequential" => ParMode::Sequential,
        "Parallel" => ParMode::Parallel,
        other => return Err(lx.err(format!("unknown parallelism '{other}'"))),
    };
    lx.sep()?;
    lx.expect_field("workload")?;
    let workload = match lx.ident()?.as_str() {
        "BaselineExact" => Workload::BaselineExact,
        "QuantumDiameter" => Workload::QuantumDiameter,
        "QuantumRadius" => Workload::QuantumRadius,
        "PrimitiveAggregate" => Workload::PrimitiveAggregate,
        other => return Err(lx.err(format!("unknown workload '{other}'"))),
    };
    lx.sep()?;
    lx.expect(&Tok::RParen)?;
    match lx.next()? {
        Tok::Eof => Ok(ScenarioSpec {
            seed,
            family,
            n,
            max_weight,
            faults,
            parallelism,
            workload,
        }),
        other => Err(lx.err(format!("trailing input: {other:?}"))),
    }
}

/// The canonical corpus file name for a seed: fixed-width so lexicographic
/// directory order equals numeric seed order (the CI smoke lane replays
/// "the first N" and must mean the same N everywhere).
pub fn file_name(seed: u64) -> String {
    format!("scenario-{seed:08}.ron")
}

/// Writes `specs` into `dir` (created if missing), one file per spec.
pub fn write_corpus(dir: &Path, specs: &[ScenarioSpec]) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(specs.len());
    for spec in specs {
        let path = dir.join(file_name(spec.seed));
        std::fs::write(&path, to_ron(spec))?;
        paths.push(path);
    }
    Ok(paths)
}

/// Loads every `*.ron` scenario in `dir`, in file-name (= seed) order.
pub fn load_corpus(dir: &Path) -> Result<Vec<ScenarioSpec>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "ron"))
        .collect();
    files.sort();
    let mut specs = Vec::with_capacity(files.len());
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let spec = parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        specs.push(spec);
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sample_seeds() {
        for seed in 0..128 {
            let spec = ScenarioSpec::from_seed(seed);
            let text = to_ron(&spec);
            assert_eq!(parse(&text).unwrap(), spec, "seed {seed}:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("Scenario(").is_err());
        assert!(parse("Banana(seed: 1)").is_err());
        let good = to_ron(&ScenarioSpec::from_seed(3));
        assert!(parse(&format!("{good} trailing")).is_err());
    }

    #[test]
    fn parse_reports_offsets() {
        let err = parse("Scenario(seed: nope,").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn file_names_sort_numerically() {
        assert!(file_name(9) < file_name(10));
        assert!(file_name(99) < file_name(100));
    }

    #[test]
    fn corpus_write_then_load() {
        let dir = std::env::temp_dir().join(format!("wdr-corpus-test-{}", std::process::id()));
        let specs: Vec<ScenarioSpec> = (0..6).map(ScenarioSpec::from_seed).collect();
        write_corpus(&dir, &specs).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(loaded, specs);
    }
}
