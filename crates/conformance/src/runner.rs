//! Corpus execution: runs every scenario through the oracles, aggregates
//! the statistical (soft-side) checks, fits and gates the round envelope,
//! and powers the `wdr-conform` mutation self-check and failing-seed
//! shrinker.

use crate::batch::{self, ScenarioTiming};
use crate::envelope::{self, EnvelopeReport};
use crate::oracle::{self, Oracle, ScenarioOutcome};
use crate::scenario::ScenarioSpec;
use quantum_sim::mutation::Mutation;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Minimum corpus-wide success rate of the w.h.p. sandwich side over
/// clean quantum runs. Clean corpora measure ≈ 0.95+; arming
/// [`Mutation::SkipGroverPhase`] collapses the searches to single uniform
/// measurements and drags the rate far below this floor — which is
/// exactly how the mutation self-check proves the suite has teeth.
pub const SOFT_SIDE_FLOOR: f64 = 0.75;

/// Below this many clean quantum samples the soft-side aggregate is not
/// statistically meaningful and is skipped (single-scenario replays).
pub const SOFT_SIDE_MIN_SAMPLES: usize = 4;

/// One suite-level failure.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The offending seed (`None` for corpus-aggregate failures).
    pub seed: Option<u64>,
    /// The oracle that failed.
    pub oracle: Oracle,
    /// Evidence.
    pub detail: String,
}

/// Options for one suite run.
#[derive(Clone, Debug, Default)]
pub struct SuiteOptions {
    /// Arm a known bug in the quantum layer for the whole run (the
    /// self-check: the suite must then FAIL).
    pub mutate: Option<Mutation>,
    /// Run only the first `n` scenarios (seed order) — the CI smoke lane.
    pub slice: Option<usize>,
    /// Where to write `BENCH_conformance.json` (`None` = skip).
    pub bench_out: Option<PathBuf>,
    /// Metrics registry the run publishes into: the envelope's fitted
    /// constants as `conformance.{regime}.…` gauges plus the quantum
    /// search counters under `conformance.quantum.…`. `None` uses a fresh
    /// private registry — the report's embedded snapshot is produced
    /// either way; pass one to also read the metrics live.
    pub registry: Option<wdr_metrics::MetricsRegistry>,
    /// Batch lanes: `None` runs the classic one-at-a-time path;
    /// `Some(l)` fans graph-grouped scenarios across `l` lanes via
    /// [`crate::batch`]. Results are bit-identical either way
    /// (proptest-pinned); only the timings differ.
    pub lanes: Option<usize>,
}

/// The suite verdict.
#[derive(Debug)]
pub struct SuiteReport {
    /// Per-scenario outcomes, corpus order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Every failure, scenario-level and aggregate.
    pub failures: Vec<Failure>,
    /// Soft-side success rate over clean quantum runs (`None` if too few).
    pub soft_rate: Option<f64>,
    /// The fitted round envelope.
    pub envelope: EnvelopeReport,
    /// Where the bench artifact landed, if written.
    pub bench_path: Option<PathBuf>,
    /// Per-scenario setup-vs-execute breakdown, corpus order. Timings are
    /// observational: they are excluded from [`fingerprint`].
    pub timings: Vec<ScenarioTiming>,
    /// Wall-clock seconds for the whole scenario loop (excludes envelope
    /// fitting and artifact writes).
    pub wall_secs: f64,
    /// Lanes the run used (`None` = sequential path).
    pub lanes: Option<usize>,
}

impl SuiteReport {
    /// `true` when no oracle failed anywhere.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total seconds spent building shared setups (graph + topology
    /// metrics), summed over scenarios.
    pub fn setup_secs(&self) -> f64 {
        self.timings.iter().map(|t| t.setup_secs).sum()
    }

    /// Total seconds spent executing oracles, summed over scenarios.
    pub fn execute_secs(&self) -> f64 {
        self.timings.iter().map(|t| t.execute_secs).sum()
    }
}

/// A stable fingerprint of everything semantically produced by a suite run:
/// per-scenario oracle verdicts (with details), soft-side flags, round
/// measurements, failures, the soft rate, and the envelope's regime fits
/// and embedded metric snapshot. Floats are rendered with full roundtrip
/// precision, so equal fingerprints mean bit-identical results.
///
/// Deliberately excluded: timings, wall clock, lane count, bench path, and
/// the envelope's host/timestamp provenance — everything observational.
/// This is the equality the batch-equivalence proptests and the E12 gate
/// check between the sequential and batched paths.
pub fn fingerprint(report: &SuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for o in &report.outcomes {
        writeln!(
            out,
            "outcome seed={} spec={:?} n={} d={} soft={:?} meas={:?}",
            o.spec.seed, o.spec, o.n, o.d, o.soft_side, o.measurement
        )
        .unwrap();
        for c in &o.checks {
            writeln!(
                out,
                "  check {} passed={} {}",
                c.oracle.name(),
                c.passed,
                c.detail
            )
            .unwrap();
        }
    }
    for f in &report.failures {
        writeln!(
            out,
            "failure seed={:?} {} {}",
            f.seed,
            f.oracle.name(),
            f.detail
        )
        .unwrap();
    }
    writeln!(out, "soft_rate={:?}", report.soft_rate).unwrap();
    writeln!(
        out,
        "envelope passed={} samples={}",
        report.envelope.passed, report.envelope.samples
    )
    .unwrap();
    for r in &report.envelope.regimes {
        writeln!(out, "regime {:?}", r).unwrap();
    }
    for (name, value) in &report.envelope.metrics {
        writeln!(out, "metric {name}={value:?}").unwrap();
    }
    writeln!(out, "seeds={:?}", report.envelope.meta.seeds).unwrap();
    out
}

/// Runs the suite over `specs` — one at a time by default, or through the
/// [`crate::batch`] engine when [`SuiteOptions::lanes`] is set. The two
/// paths produce bit-identical reports (see [`fingerprint`]).
pub fn run_suite(specs: &[ScenarioSpec], options: &SuiteOptions) -> SuiteReport {
    let registry = options.registry.clone().unwrap_or_default();
    // The mutation hook and metrics sink are thread-local scope guards;
    // `batch::run_specs` installs them on the calling thread for the
    // sequential path and inside every lane task for the batched path.
    let search_metrics = quantum_sim::SearchMetrics::register(&registry, "conformance.quantum");
    let take = options.slice.unwrap_or(specs.len()).min(specs.len());
    let started = Instant::now();
    let lane_results = batch::run_specs(
        &specs[..take],
        options.lanes,
        options.mutate,
        &search_metrics,
    );
    let wall_secs = started.elapsed().as_secs_f64();
    let outcomes = lane_results.outcomes;
    let timings = lane_results.timings;
    let mut failures = Vec::new();
    for outcome in &outcomes {
        for check in outcome.failures() {
            failures.push(Failure {
                seed: Some(outcome.spec.seed),
                oracle: check.oracle,
                detail: check.detail.clone(),
            });
        }
    }

    let soft: Vec<bool> = outcomes.iter().filter_map(|o| o.soft_side).collect();
    let soft_rate = if soft.len() >= SOFT_SIDE_MIN_SAMPLES {
        let rate = soft.iter().filter(|&&ok| ok).count() as f64 / soft.len() as f64;
        if rate < SOFT_SIDE_FLOOR {
            failures.push(Failure {
                seed: None,
                oracle: Oracle::ApproxRatioSoft,
                detail: format!(
                    "w.h.p. sandwich side held in only {:.0}% of {} clean quantum runs \
                     (floor {:.0}%) — the approximation guarantee is statistically broken",
                    rate * 100.0,
                    soft.len(),
                    SOFT_SIDE_FLOOR * 100.0
                ),
            });
        }
        Some(rate)
    } else {
        None
    };

    let measurements: Vec<_> = outcomes.iter().filter_map(|o| o.measurement).collect();
    let mut envelope = envelope::fit(&measurements);
    let seeds: Vec<u64> = specs[..take].iter().map(|s| s.seed).collect();
    envelope.publish(&seeds, &registry);
    for regime in envelope.regimes.iter().filter(|r| !r.passed) {
        failures.push(Failure {
            seed: None,
            oracle: Oracle::RoundEnvelope,
            detail: format!(
                "regime {}: fitted constant c_max = {:.1} exceeds ceiling {:.1}",
                regime.regime, regime.c_max, regime.ceiling
            ),
        });
    }
    let bench_path = options
        .bench_out
        .as_deref()
        .map(|dir| envelope::write_bench_json(&envelope, dir).expect("write BENCH_conformance"));

    SuiteReport {
        outcomes,
        failures,
        soft_rate,
        envelope,
        bench_path,
        timings,
        wall_secs,
        lanes: options.lanes,
    }
}

/// Runs one scenario and returns the first per-scenario oracle failure
/// (`None` = the scenario passes). The shrinker's fitness function.
pub fn first_failure(spec: &ScenarioSpec) -> Option<String> {
    let outcome = oracle::run_scenario(spec);
    outcome
        .failures()
        .first()
        .map(|c| format!("{}: {}", c.oracle.name(), c.detail))
}

/// Result of shrinking a failing seed.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The spec the shrink started from.
    pub original: ScenarioSpec,
    /// The smallest still-failing spec found.
    pub shrunk: ScenarioSpec,
    /// Accepted shrink steps.
    pub steps: usize,
    /// The failure the shrunk spec reproduces.
    pub failure: String,
}

/// Greedy shrink: while any candidate (halve `n` / drop faults / force
/// sequential / collapse weights) still fails, descend into it. Returns
/// `None` when `spec` does not fail in the first place. Terminates because
/// every candidate strictly decreases
/// [`ScenarioSpec::size_measure`].
pub fn shrink(spec: &ScenarioSpec) -> Option<ShrinkOutcome> {
    shrink_with(spec, first_failure)
}

/// [`shrink`] with an injectable fitness function (the real one replays
/// the oracles; tests substitute synthetic failure predicates).
pub fn shrink_with(
    spec: &ScenarioSpec,
    fails: impl Fn(&ScenarioSpec) -> Option<String>,
) -> Option<ShrinkOutcome> {
    let mut failure = fails(spec)?;
    let mut current = *spec;
    let mut steps = 0usize;
    loop {
        let mut advanced = false;
        for candidate in current.shrink_candidates() {
            if let Some(f) = fails(&candidate) {
                current = candidate;
                failure = f;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    Some(ShrinkOutcome {
        original: *spec,
        shrunk: current,
        steps,
        failure,
    })
}

/// Renders the suite verdict for the CLI (stable text: CI greps oracle
/// names out of it).
pub fn render_report(report: &SuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "scenarios run: {}", report.outcomes.len()).unwrap();
    let shared = report.timings.iter().filter(|t| t.shared_setup).count();
    writeln!(
        out,
        "timing: setup {:.3}s + execute {:.3}s, wall {:.3}s ({}, {} shared setups)",
        report.setup_secs(),
        report.execute_secs(),
        report.wall_secs,
        match report.lanes {
            Some(l) => format!("{l} lanes"),
            None => "sequential".to_string(),
        },
        shared
    )
    .unwrap();
    if let Some(rate) = report.soft_rate {
        writeln!(
            out,
            "soft-side rate: {:.0}% (floor {:.0}%)",
            rate * 100.0,
            SOFT_SIDE_FLOOR * 100.0
        )
        .unwrap();
    }
    for regime in &report.envelope.regimes {
        writeln!(
            out,
            "envelope {}: {} samples, c in [{:.1}, {:.1}], ceiling {:.1} — {}",
            regime.regime,
            regime.samples,
            regime.c_min,
            regime.c_max,
            regime.ceiling,
            if regime.passed { "ok" } else { "FAIL" }
        )
        .unwrap();
    }
    if let Some(path) = &report.bench_path {
        writeln!(out, "bench artifact: {}", path.display()).unwrap();
    }
    if report.passed() {
        writeln!(out, "PASS: every oracle satisfied").unwrap();
    } else {
        writeln!(out, "FAIL: {} oracle failure(s)", report.failures.len()).unwrap();
        for f in &report.failures {
            match f.seed {
                Some(seed) => writeln!(out, "  [{}] seed {seed}: {}", f.oracle.name(), f.detail),
                None => writeln!(out, "  [{}] corpus-wide: {}", f.oracle.name(), f.detail),
            }
            .unwrap();
        }
    }
    out
}

/// Generates the canonical corpus: the specs of seeds `0..count`.
pub fn generate_corpus(count: u64) -> Vec<ScenarioSpec> {
    (0..count).map(ScenarioSpec::from_seed).collect()
}

/// Loads the corpus from `dir` and runs the suite.
pub fn run_corpus_dir(dir: &Path, options: &SuiteOptions) -> Result<SuiteReport, String> {
    let specs = crate::corpus::load_corpus(dir)?;
    if specs.is_empty() {
        return Err(format!("no scenarios in {}", dir.display()));
    }
    Ok(run_suite(&specs, options))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_returns_none_for_passing_predicate() {
        let spec = ScenarioSpec::from_seed(7);
        assert!(shrink_with(&spec, |_| None).is_none());
    }

    #[test]
    fn shrink_descends_to_the_predicate_boundary() {
        // Synthetic bug: "fails whenever n ≥ 8". The greedy shrinker must
        // land on a still-failing spec none of whose candidates fail —
        // i.e. halving n once more would cross below 8.
        let spec = generate_corpus(48)
            .into_iter()
            .find(|s| s.n >= 16)
            .expect("corpus has a spec with n ≥ 16");
        let fails = |s: &ScenarioSpec| (s.n >= 8).then(|| format!("n = {} too big", s.n));
        let out = shrink_with(&spec, fails).expect("spec fails the predicate");
        assert!(out.steps >= 1, "at least one halving step must be accepted");
        assert!(out.shrunk.n >= 8, "shrunk spec must still fail");
        assert!(
            out.shrunk.shrink_candidates().iter().all(|c| c.n < 8),
            "shrunk spec must be a local minimum of the predicate"
        );
        assert!(out.shrunk.size_measure() < out.original.size_measure());
    }

    #[test]
    fn suite_publishes_metrics_and_provenance() {
        let specs = generate_corpus(2);
        let registry = wdr_metrics::MetricsRegistry::new();
        let options = SuiteOptions {
            registry: Some(registry.clone()),
            ..SuiteOptions::default()
        };
        let report = run_suite(&specs, &options);
        assert_eq!(report.envelope.meta.seeds, vec![0, 1]);
        assert!(!report.envelope.metrics.is_empty());
        // The caller's registry holds exactly what the report embedded
        // (the search counters are registered even if no quantum scenario
        // ran, so the key is always present).
        let flat = registry.snapshot().flatten();
        assert!(flat.contains_key("conformance.quantum.searches"));
        for (name, value) in &report.envelope.metrics {
            assert_eq!(flat.get(name), Some(value), "metric {name} drifted");
        }
    }

    #[test]
    fn corpus_seeds_are_sequential() {
        let specs = generate_corpus(5);
        assert_eq!(specs.len(), 5);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.seed, i as u64);
        }
    }
}
