//! Many-seed batch execution engine: lockstep scenario execution with
//! results bit-identical to the one-at-a-time path.
//!
//! The engine splits a corpus run into the two halves the algorithm's own
//! structure suggests (the paper fixes the skeleton and distance-scale
//! schedule per graph while only the Grover randomness varies per run):
//!
//! * **shared-immutable, once per family cell** — specs are grouped by
//!   [`graph_key`] (specs with equal keys build byte-identical graphs), and
//!   each group gets one [`SharedSetup`]: the [`WeightedGraph`] plus the
//!   lazily-cached derived metrics of
//!   [`congest_graph::context::GraphContext`] (`D`, weighted/unweighted
//!   extremes). The Lemma 3.1 amplification budgets are likewise derived
//!   once per `(ρ, δ)` cell through
//!   [`quantum_sim::search::SearchSchedule::cached`];
//! * **per-seed mutable, one lane per scenario** — RNG streams, Grover
//!   measurement tallies, oracle verdicts, and timings live in the lane
//!   results, laid out struct-of-arrays by corpus index
//!   ([`LaneResults`]).
//!
//! Groups are fanned across a dedicated vendored-rayon pool. Each spawned
//! task installs its *own* mutation and search-metrics guards (both are
//! thread-local scope guards), so mutation self-checks and live counters
//! behave identically under batching; the counters are shared atomics, so
//! corpus-wide totals are independent of lane scheduling. Lane results are
//! written back into their original corpus slots — the index-ordered
//! reduction discipline of `parallel_equiv.rs` — so the returned order, and
//! every value in it, is bit-identical to the sequential path. The
//! `tests/batch_equiv.rs` proptests pin exactly that.
//!
//! [`WeightedGraph`]: congest_graph::WeightedGraph
//! [`SharedSetup`]: crate::oracle::SharedSetup

use crate::oracle::{self, ScenarioOutcome, SharedSetup};
use crate::scenario::{Family, ScenarioSpec};
use quantum_sim::mutation::Mutation;
use quantum_sim::SearchMetrics;
use std::panic::AssertUnwindSafe;
use std::time::Instant;

/// Per-scenario wall-time breakdown: what was spent building the shared
/// setup (graph + topology metrics) vs executing the oracles.
///
/// Timings are observational only — they are *excluded* from the
/// batch-equivalence fingerprint ([`crate::runner::fingerprint`]).
#[derive(Copy, Clone, Debug)]
pub struct ScenarioTiming {
    /// The scenario's seed (corpus identity).
    pub seed: u64,
    /// Seconds spent building graph + `D` for this scenario. Zero when the
    /// scenario reused a setup built by an earlier lane-mate.
    pub setup_secs: f64,
    /// Seconds spent running the oracles (both replays).
    pub execute_secs: f64,
    /// `true` when this scenario ran against a setup shared from an
    /// earlier member of its graph group.
    pub shared_setup: bool,
}

impl ScenarioTiming {
    /// Total wall time attributed to this scenario.
    pub fn total_secs(&self) -> f64 {
        self.setup_secs + self.execute_secs
    }
}

/// Per-seed lane results in struct-of-arrays form, corpus order: lane `i`
/// of each array belongs to `specs[i]`.
#[derive(Debug, Default)]
pub struct LaneResults {
    /// Oracle outcomes, one per spec.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Setup-vs-execute breakdown, one per spec.
    pub timings: Vec<ScenarioTiming>,
}

/// The spec's *graph identity*: two specs with equal keys build
/// byte-identical graphs, so one [`SharedSetup`] serves both.
///
/// Deterministic families ([`Family::Path`], `Cycle`, `Star`, `Grid`,
/// `BinaryTree`) depend only on `(family, n, max_weight)`; the
/// seeded-random families (`ErdosRenyi`, `ClusterRing`) additionally fold
/// in the seed that drives their ChaCha stream. Fault plan, parallelism
/// mode, and workload never touch graph construction and are deliberately
/// absent.
pub fn graph_key(spec: &ScenarioSpec) -> String {
    match spec.family {
        Family::ErdosRenyi { .. } | Family::ClusterRing { .. } => format!(
            "{:?}|n{}|w{}|seed{}",
            spec.family, spec.n, spec.max_weight, spec.seed
        ),
        _ => format!("{:?}|n{}|w{}", spec.family, spec.n, spec.max_weight),
    }
}

/// Groups corpus indices by [`graph_key`], groups in first-appearance
/// order, indices ascending within each group.
pub fn group_by_graph(specs: &[ScenarioSpec]) -> Vec<Vec<usize>> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: std::collections::HashMap<String, Vec<usize>> =
        std::collections::HashMap::new();
    for (idx, spec) in specs.iter().enumerate() {
        let key = graph_key(spec);
        let bucket = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        bucket.push(idx);
    }
    order
        .into_iter()
        .map(|key| groups.remove(&key).expect("group recorded in order"))
        .collect()
}

/// Runs `specs` through the oracles, sequentially or batched.
///
/// `lanes = None` is the one-at-a-time reference path: one setup per
/// scenario, built privately, guards installed once on the calling thread
/// (exactly the discipline `run_suite` always had). `lanes = Some(l)` runs
/// the grouped batch engine on a dedicated `l`-thread pool. Both return
/// results in corpus order with values bit-identical to each other.
pub fn run_specs(
    specs: &[ScenarioSpec],
    lanes: Option<usize>,
    mutate: Option<Mutation>,
    metrics: &SearchMetrics,
) -> LaneResults {
    match lanes {
        None => run_sequential(specs, mutate, metrics),
        Some(l) => run_batched(specs, l.max(1), mutate, metrics),
    }
}

fn run_sequential(
    specs: &[ScenarioSpec],
    mutate: Option<Mutation>,
    metrics: &SearchMetrics,
) -> LaneResults {
    let _mutation_guard = mutate.map(quantum_sim::mutation::arm);
    let _metrics_guard = quantum_sim::instrument::install(metrics.clone());
    let mut results = LaneResults::default();
    for spec in specs {
        let (outcome, timing) = run_one_cold(spec);
        results.outcomes.push(outcome);
        results.timings.push(timing);
    }
    results
}

/// Builds a private setup for `spec` and runs it, timing setup vs execute.
fn run_one_cold(spec: &ScenarioSpec) -> (ScenarioOutcome, ScenarioTiming) {
    let t0 = Instant::now();
    let setup = build_setup(spec);
    let setup_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let outcome = match &setup {
        Some(setup) => oracle::run_scenario_shared(spec, setup),
        // Setup panicked; the one-at-a-time path rebuilds internally and
        // converts the same panic into the canonical no-panic failure.
        None => oracle::run_scenario(spec),
    };
    let timing = ScenarioTiming {
        seed: spec.seed,
        setup_secs,
        execute_secs: t1.elapsed().as_secs_f64(),
        shared_setup: false,
    };
    (outcome, timing)
}

/// Builds the shared setup with `D` pre-warmed (the one derived metric
/// every workload reads before evaluating); `None` if construction panics.
fn build_setup(spec: &ScenarioSpec) -> Option<SharedSetup> {
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        let setup = SharedSetup::build(spec);
        setup.d();
        setup
    }))
    .ok()
}

fn run_batched(
    specs: &[ScenarioSpec],
    lanes: usize,
    mutate: Option<Mutation>,
    metrics: &SearchMetrics,
) -> LaneResults {
    let groups = group_by_graph(specs);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(lanes)
        .build()
        .expect("build batch lane pool");
    // One result bucket per group: each spawned task owns its bucket
    // (disjoint &mut), so no locks sit on the result path.
    let mut buckets: Vec<Vec<(usize, ScenarioOutcome, ScenarioTiming)>> =
        groups.iter().map(|g| Vec::with_capacity(g.len())).collect();
    pool.install(|| {
        rayon::scope(|s| {
            for (group, bucket) in groups.iter().zip(buckets.iter_mut()) {
                let metrics = metrics.clone();
                s.spawn(move || {
                    // Thread-local guards must be installed in the lane
                    // task itself — jobs run on pool workers (or on the
                    // caller while it helps drain; both guards nest).
                    let _mutation_guard = mutate.map(quantum_sim::mutation::arm);
                    let _metrics_guard = quantum_sim::instrument::install(metrics);
                    run_group(specs, group, bucket);
                });
            }
        })
    });
    // Index-ordered reduction: every lane result lands back in its
    // original corpus slot, so the output order (and content) is
    // independent of lane count and scheduling.
    let mut slots: Vec<Option<(ScenarioOutcome, ScenarioTiming)>> =
        specs.iter().map(|_| None).collect();
    for bucket in buckets {
        for (idx, outcome, timing) in bucket {
            debug_assert!(slots[idx].is_none(), "corpus index {idx} filled twice");
            slots[idx] = Some((outcome, timing));
        }
    }
    let mut results = LaneResults::default();
    for slot in slots {
        let (outcome, timing) = slot.expect("every corpus index filled exactly once");
        results.outcomes.push(outcome);
        results.timings.push(timing);
    }
    results
}

/// Runs one graph group against a single shared setup, attributing the
/// setup cost to the group's first member.
fn run_group(
    specs: &[ScenarioSpec],
    group: &[usize],
    out: &mut Vec<(usize, ScenarioOutcome, ScenarioTiming)>,
) {
    let t0 = Instant::now();
    let setup = build_setup(&specs[group[0]]);
    let setup_secs = t0.elapsed().as_secs_f64();
    match setup {
        Some(setup) => {
            for (k, &idx) in group.iter().enumerate() {
                let spec = &specs[idx];
                let t1 = Instant::now();
                let outcome = oracle::run_scenario_shared(spec, &setup);
                let timing = ScenarioTiming {
                    seed: spec.seed,
                    setup_secs: if k == 0 { setup_secs } else { 0.0 },
                    execute_secs: t1.elapsed().as_secs_f64(),
                    shared_setup: k > 0,
                };
                out.push((idx, outcome, timing));
            }
        }
        None => {
            // Shared setup panicked. Fall back to the one-at-a-time path
            // per member: it rebuilds (and re-panics) internally, yielding
            // the exact failure outcome the sequential run reports.
            for (k, &idx) in group.iter().enumerate() {
                let spec = &specs[idx];
                let t1 = Instant::now();
                let outcome = oracle::run_scenario(spec);
                let timing = ScenarioTiming {
                    seed: spec.seed,
                    setup_secs: if k == 0 { setup_secs } else { 0.0 },
                    execute_secs: t1.elapsed().as_secs_f64(),
                    shared_setup: false,
                };
                out.push((idx, outcome, timing));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FaultSpec, ParMode, Workload};

    fn spec(seed: u64, family: Family, n: usize, w: u64) -> ScenarioSpec {
        ScenarioSpec {
            seed,
            family,
            n,
            max_weight: w,
            faults: FaultSpec::NoFaults,
            parallelism: ParMode::Sequential,
            workload: Workload::BaselineExact,
        }
        .normalized()
    }

    #[test]
    fn deterministic_families_group_across_seeds() {
        let specs = vec![
            spec(0, Family::Path, 12, 8),
            spec(1, Family::Star, 9, 1),
            spec(2, Family::Path, 12, 8),
            spec(3, Family::Path, 12, 4096),
        ];
        let groups = group_by_graph(&specs);
        assert_eq!(groups, vec![vec![0, 2], vec![1], vec![3]]);
        assert_eq!(graph_key(&specs[0]), graph_key(&specs[2]));
        assert_ne!(graph_key(&specs[0]), graph_key(&specs[3]));
    }

    #[test]
    fn random_families_stay_singleton_per_seed() {
        let f = Family::ErdosRenyi { p: 0.25 };
        let specs = vec![spec(5, f, 16, 8), spec(6, f, 16, 8), spec(5, f, 16, 8)];
        let groups = group_by_graph(&specs);
        // Same seed groups; different seed does not.
        assert_eq!(groups, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn grouped_members_build_identical_graphs() {
        // The graph_key contract: equal keys ⇒ byte-identical graphs, even
        // though the seeds differ (deterministic families ignore the seed).
        let a = spec(11, Family::Grid, 20, 8);
        let b = spec(99, Family::Grid, 20, 8);
        assert_eq!(graph_key(&a), graph_key(&b));
        assert_eq!(a.build_graph().digest(), b.build_graph().digest());
    }

    #[test]
    fn batched_results_keep_corpus_order() {
        let specs: Vec<ScenarioSpec> = vec![
            spec(0, Family::Path, 10, 1),
            spec(1, Family::Star, 8, 8),
            spec(2, Family::Path, 10, 1),
            spec(3, Family::Cycle, 9, 1),
        ];
        let registry = wdr_metrics::MetricsRegistry::new();
        let metrics = SearchMetrics::register(&registry, "test.batch");
        let results = run_specs(&specs, Some(2), None, &metrics);
        assert_eq!(results.outcomes.len(), specs.len());
        assert_eq!(results.timings.len(), specs.len());
        for (i, outcome) in results.outcomes.iter().enumerate() {
            assert_eq!(outcome.spec.seed, specs[i].seed);
            assert_eq!(results.timings[i].seed, specs[i].seed);
        }
        // Seed 2 shares seed 0's Path graph: no setup cost, flagged shared.
        assert!(results.timings[2].shared_setup);
        assert_eq!(results.timings[2].setup_secs, 0.0);
        assert!(!results.timings[0].shared_setup);
    }
}
