//! Round-complexity envelope: fits the trace-derived round counts of the
//! clean corpus runs against the asymptotic rows of
//! [`congest_wdr::table_one`], producing one constant per regime cell and
//! gating each cell against a pinned ceiling (a constant-factor
//! regression gate — asymptotics can't drift silently).
//!
//! The fit is deliberately primitive: for each measurement the implied
//! constant is `c = rounds / model(n, D)`, where `model` is the Table 1
//! row the run claims to implement — `min{n^{9/10}D^{3/10}, n}` for the
//! quantum weighted algorithm (the *this work* row), `n` for the
//! classical APSP baselines. Cells are `(model, D-branch, weight class)`;
//! the gate bounds the cell *maximum*, so one bad seed trips it.
//!
//! The whole report is exported as `BENCH_conformance.json` (same
//! convention as the `BENCH_*.json` artifacts of `wdr-bench`).

use serde::Serialize;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use wdr_metrics::{MetricsRegistry, RunMeta};

/// Which Table 1 row a measurement is fitted against.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize)]
pub enum ModelKind {
    /// Theorem 1.1: `Õ(min{n^{9/10}D^{3/10}, n})`.
    QuantumWeighted,
    /// The classical `Θ̃(n)` APSP row.
    ClassicalApsp,
}

/// One trace-derived round count from a clean scenario run.
#[derive(Copy, Clone, Debug)]
pub struct RoundMeasurement {
    /// Model row to fit against.
    pub kind: ModelKind,
    /// Effective node count.
    pub n: usize,
    /// Unweighted diameter of the run's graph.
    pub d: usize,
    /// The scenario's weight-range regime.
    pub max_weight: u64,
    /// Measured rounds (budgeted rounds for the quantum algorithm — the
    /// low-variance Lemma 3.1 worst-case schedule).
    pub rounds: usize,
}

/// The model value a measurement is divided by, straight from the
/// evaluated Table 1 rows (`this work` quantum upper / classical upper).
pub fn model_value(kind: ModelKind, n: usize, d: usize) -> f64 {
    let rows = congest_wdr::table_one::rows(n, d);
    let this_work = rows
        .iter()
        .find(|r| r.this_work)
        .expect("Table 1 contains the this-work row");
    match kind {
        ModelKind::QuantumWeighted => this_work.quantum_upper.1,
        ModelKind::ClassicalApsp => this_work.classical_upper.1,
    }
    .max(1.0)
}

/// Pinned per-model ceilings for the fitted constants, with ~6× headroom
/// over the constants measured on the shipped 48-seed corpus. At corpus
/// sizes (`n ≤ 48`) everything the `Õ(·)` hides lands in the constant:
/// quantum cells fit `c ≈ 1.2e7 – 1.6e8` (the Lemma 3.1 budget's
/// `δ`-amplification, the polylog factors, and the small-`n` additive
/// terms), classical cells fit `c ≈ 1.2 – 6.4`. Raising a ceiling is a
/// deliberate act: it means the implementation got asymptotically slower
/// relative to its Table 1 row.
pub fn ceiling(kind: ModelKind) -> f64 {
    match kind {
        ModelKind::QuantumWeighted => 1.0e9,
        ModelKind::ClassicalApsp => 30.0,
    }
}

/// Fitted constants of one regime cell.
#[derive(Clone, Debug, Serialize)]
pub struct RegimeFit {
    /// Cell key: `model|D-branch|weight-class`.
    pub regime: String,
    /// Model row the cell is fitted against.
    pub kind: ModelKind,
    /// Number of measurements in the cell.
    pub samples: usize,
    /// Smallest implied constant.
    pub c_min: f64,
    /// Mean implied constant.
    pub c_mean: f64,
    /// Largest implied constant (the gated quantity).
    pub c_max: f64,
    /// The gate ceiling for this cell.
    pub ceiling: f64,
    /// `c_max ≤ ceiling`.
    pub passed: bool,
}

/// The full envelope report (`BENCH_conformance.json`).
#[derive(Clone, Debug, Serialize)]
pub struct EnvelopeReport {
    /// Artifact name, for the bench-artifact conventions.
    pub experiment: String,
    /// Provenance header; [`fit`] stamps it with an empty seed set,
    /// [`EnvelopeReport::publish`] re-stamps it with the run's seeds.
    pub meta: RunMeta,
    /// Total measurements fitted.
    pub samples: usize,
    /// Per-regime fits, sorted by cell key.
    pub regimes: Vec<RegimeFit>,
    /// `true` when every cell is inside its ceiling.
    pub passed: bool,
    /// Embedded registry snapshot as sorted `(name, value)` pairs —
    /// the fitted constants as `conformance.{regime}.…` gauges plus
    /// whatever else the runner's registry accumulated (the quantum
    /// search counters). Empty until [`EnvelopeReport::publish`] runs.
    pub metrics: Vec<(String, f64)>,
}

impl EnvelopeReport {
    /// Publishes the fitted constants as gauges named
    /// `conformance.{regime}.{c_max,c_mean,samples}` in `registry`,
    /// stamps the provenance header with `seeds`, and embeds the
    /// registry's full snapshot as the report's `metrics` pairs.
    pub fn publish(&mut self, seeds: &[u64], registry: &MetricsRegistry) {
        for fit in &self.regimes {
            let name = |metric: &str| format!("conformance.{}.{metric}", fit.regime);
            registry.gauge(&name("c_max")).set(fit.c_max);
            registry.gauge(&name("c_mean")).set(fit.c_mean);
            registry.gauge(&name("samples")).set(fit.samples as f64);
        }
        self.meta = RunMeta::capture(seeds);
        self.metrics = registry.snapshot().to_pairs();
    }
}

fn weight_class(max_weight: u64) -> &'static str {
    match max_weight {
        1 => "unit-w",
        2..=16 => "small-w",
        _ => "wide-w",
    }
}

fn d_branch(n: usize, d: usize) -> &'static str {
    if (d as f64) <= congest_wdr::cost::crossover_d(n) {
        "sublinear-D"
    } else {
        "linear-D"
    }
}

fn kind_name(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::QuantumWeighted => "quantum",
        ModelKind::ClassicalApsp => "classical",
    }
}

/// Bins the measurements into regime cells and fits the constants.
pub fn fit(measurements: &[RoundMeasurement]) -> EnvelopeReport {
    let mut cells: BTreeMap<String, (ModelKind, Vec<f64>)> = BTreeMap::new();
    for m in measurements {
        let key = format!(
            "{}|{}|{}",
            kind_name(m.kind),
            d_branch(m.n, m.d),
            weight_class(m.max_weight)
        );
        let c = m.rounds as f64 / model_value(m.kind, m.n, m.d);
        cells.entry(key).or_insert((m.kind, Vec::new())).1.push(c);
    }
    let regimes: Vec<RegimeFit> = cells
        .into_iter()
        .map(|(regime, (kind, cs))| {
            let c_min = cs.iter().copied().fold(f64::INFINITY, f64::min);
            let c_max = cs.iter().copied().fold(0.0, f64::max);
            let c_mean = cs.iter().sum::<f64>() / cs.len() as f64;
            let ceiling = ceiling(kind);
            RegimeFit {
                regime,
                kind,
                samples: cs.len(),
                c_min,
                c_mean,
                c_max,
                ceiling,
                passed: c_max <= ceiling,
            }
        })
        .collect();
    EnvelopeReport {
        experiment: "conformance_envelope".to_string(),
        meta: RunMeta::capture(&[]),
        samples: measurements.len(),
        passed: regimes.iter().all(|r| r.passed),
        regimes,
        metrics: Vec::new(),
    }
}

/// Writes the report as `BENCH_conformance.json` under `out_dir`
/// (created if missing); returns the path.
pub fn write_bench_json(report: &EnvelopeReport, out_dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_conformance.json");
    std::fs::write(
        &path,
        serde_json::to_string(report).expect("envelope report serializes"),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(kind: ModelKind, n: usize, d: usize, w: u64, rounds: usize) -> RoundMeasurement {
        RoundMeasurement {
            kind,
            n,
            d,
            max_weight: w,
            rounds,
        }
    }

    #[test]
    fn fit_bins_by_regime() {
        let ms = [
            m(ModelKind::QuantumWeighted, 16, 2, 1, 400),
            m(ModelKind::QuantumWeighted, 16, 2, 1, 800),
            m(ModelKind::QuantumWeighted, 16, 15, 1, 700),
            m(ModelKind::ClassicalApsp, 32, 4, 8, 90),
        ];
        let rep = fit(&ms);
        assert_eq!(rep.samples, 4);
        assert_eq!(rep.regimes.len(), 3);
        let quantum_sub = rep
            .regimes
            .iter()
            .find(|r| r.regime == "quantum|sublinear-D|unit-w")
            .unwrap();
        assert_eq!(quantum_sub.samples, 2);
        assert!(quantum_sub.c_min <= quantum_sub.c_mean);
        assert!(quantum_sub.c_mean <= quantum_sub.c_max);
    }

    #[test]
    fn gate_trips_on_blowup() {
        // rounds ≫ ceiling · model ⇒ the cell fails and the report fails.
        let blown = [m(ModelKind::ClassicalApsp, 32, 4, 1, 32 * 1000)];
        let rep = fit(&blown);
        assert!(!rep.passed);
        assert!(!rep.regimes[0].passed);
    }

    #[test]
    fn model_values_track_table_one() {
        // The quantum model is the min{n^0.9 D^0.3, n} row: at D above the
        // n^{1/3} crossover it equals n.
        let v = model_value(ModelKind::QuantumWeighted, 1 << 15, 1 << 10);
        assert_eq!(v, (1usize << 15) as f64);
        assert_eq!(model_value(ModelKind::ClassicalApsp, 64, 4), 64.0);
    }

    #[test]
    fn report_serializes() {
        // crossover_d(27) = 3, so d = 3 sits on the sublinear branch.
        let rep = fit(&[m(ModelKind::QuantumWeighted, 27, 3, 8, 500)]);
        let json = serde_json::to_string(&rep).unwrap();
        assert!(json.contains("conformance_envelope"));
        assert!(json.contains("quantum|sublinear-D|small-w"));
        assert!(json.contains("\"meta\""), "provenance header present");
    }

    #[test]
    fn publish_registers_gauges_and_embeds_the_snapshot() {
        let mut rep = fit(&[
            m(ModelKind::QuantumWeighted, 27, 3, 8, 500),
            m(ModelKind::ClassicalApsp, 32, 4, 8, 90),
        ]);
        let registry = MetricsRegistry::new();
        registry.counter("conformance.quantum.searches").add(11);
        rep.publish(&[3, 1, 3], &registry);
        assert_eq!(rep.meta.seeds, vec![1, 3]);
        let g = registry.gauge("conformance.quantum|sublinear-D|small-w.c_max");
        let cell = rep
            .regimes
            .iter()
            .find(|r| r.regime == "quantum|sublinear-D|small-w")
            .unwrap();
        assert_eq!(g.get(), cell.c_max);
        // The embedded pairs carry both the gauges and pre-existing
        // registry contents, in sorted order.
        assert!(rep
            .metrics
            .iter()
            .any(|(n, v)| n == "conformance.quantum.searches" && *v == 11.0));
        assert!(rep
            .metrics
            .iter()
            .any(|(n, _)| n == "conformance.classical|linear-D|small-w.samples"));
        assert!(rep.metrics.windows(2).all(|w| w[0].0 < w[1].0));
        // The published report round-trips through the artifact JSON with
        // the pairs intact (the shape `trajectory::extract_metrics` reads).
        let v = serde_json::from_str(&serde_json::to_string(&rep).unwrap()).unwrap();
        let pairs = v
            .get("metrics")
            .and_then(serde_json::Value::as_array)
            .expect("metrics pairs serialize as an array");
        assert_eq!(pairs.len(), rep.metrics.len());
    }
}
