//! Paper-guarantee oracles: run one [`ScenarioSpec`] and check the
//! distributed result against the centralized kernels and the guarantees
//! the paper (and this reproduction's own contracts) state.
//!
//! | oracle | workloads | checks |
//! |---|---|---|
//! | `exact-agreement` | `BaselineExact` | distributed APSP diameter/radius == centralized sweep, weighted and unweighted |
//! | `approx-ratio-hard` | quantum, clean | the always-true side of the `(1+ε)²` sandwich (`ε =` [`o1_tolerance`]) |
//! | `approx-ratio-soft` | quantum, clean | the w.h.p. side, aggregated over the corpus by the runner |
//! | `confidence-consistency` | quantum | `Guaranteed` ⇔ zero fault overhead; `UnderFaults` carries non-zero resilience |
//! | `quality-consistency` | `PrimitiveAggregate` | convergecast under faults: `Ok` ⇒ the exact aggregate, else a *typed* error |
//! | `determinism` | all | the same seed replays to the identical outcome |
//! | `no-panic` | all | the whole scenario runs without panicking |

use crate::envelope::{ModelKind, RoundMeasurement};
use crate::scenario::{ScenarioSpec, Workload};
use congest_algos::baselines::{diameter_radius_exact, WeightMode};
use congest_graph::context::GraphContext;
use congest_graph::sweep::SweepResult;
use congest_graph::WeightedGraph;
use congest_sim::primitives::{self, Aggregate};
use congest_wdr::algorithm::{quantum_weighted, Confidence, Objective};
use congest_wdr::params::WdrParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::panic::AssertUnwindSafe;

/// The explicit `o(1)` term of Theorem 1.1's `(1+o(1))` guarantee, as a
/// per-`n` tolerance: the paper instantiates `ε = 1/log n` (Section 2),
/// so the approximation factor at size `n` is `(1 + 1/log₂ n)²`.
pub fn o1_tolerance(n: usize) -> f64 {
    1.0 / (n.max(4) as f64).log2()
}

/// Which oracle produced a check result.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Oracle {
    /// Distributed baselines agree exactly with the centralized sweep.
    ExactAgreement,
    /// The deterministic side of the `(1+ε)²` sandwich.
    ApproxRatioHard,
    /// The w.h.p. side of the sandwich (aggregated corpus-wide).
    ApproxRatioSoft,
    /// `Confidence` classification is consistent with the fault plan.
    ConfidenceConsistency,
    /// Primitive results under faults are exact-or-typed-error.
    QualityConsistency,
    /// Same seed ⇒ identical outcome.
    Determinism,
    /// No panic anywhere in the scenario.
    NoPanic,
    /// Fitted round constants stay inside the regime envelope (emitted by
    /// the runner, not per scenario).
    RoundEnvelope,
}

impl Oracle {
    /// Stable kebab-case name (used in reports and grepped by CI).
    pub fn name(self) -> &'static str {
        match self {
            Oracle::ExactAgreement => "exact-agreement",
            Oracle::ApproxRatioHard => "approx-ratio-hard",
            Oracle::ApproxRatioSoft => "approx-ratio-soft",
            Oracle::ConfidenceConsistency => "confidence-consistency",
            Oracle::QualityConsistency => "quality-consistency",
            Oracle::Determinism => "determinism",
            Oracle::NoPanic => "no-panic",
            Oracle::RoundEnvelope => "round-envelope",
        }
    }
}

/// One oracle verdict for one scenario.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Which oracle.
    pub oracle: Oracle,
    /// Verdict.
    pub passed: bool,
    /// Human-readable evidence (expected/actual on failure).
    pub detail: String,
}

impl CheckResult {
    fn pass(oracle: Oracle, detail: impl Into<String>) -> CheckResult {
        CheckResult {
            oracle,
            passed: true,
            detail: detail.into(),
        }
    }

    fn fail(oracle: Oracle, detail: impl Into<String>) -> CheckResult {
        CheckResult {
            oracle,
            passed: false,
            detail: detail.into(),
        }
    }
}

/// Everything one scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The spec that ran.
    pub spec: ScenarioSpec,
    /// Effective node count (families may round the requested `n`).
    pub n: usize,
    /// Unweighted diameter of the built graph.
    pub d: usize,
    /// Per-oracle verdicts.
    pub checks: Vec<CheckResult>,
    /// Clean quantum runs only: did the w.h.p. side of the sandwich hold?
    /// (Aggregated by the runner into the `approx-ratio-soft` verdict.)
    pub soft_side: Option<bool>,
    /// Round measurement feeding the envelope fit (clean runs only).
    pub measurement: Option<RoundMeasurement>,
}

impl ScenarioOutcome {
    /// The failed checks.
    pub fn failures(&self) -> Vec<&CheckResult> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }
}

/// Compact summary of one evaluation — the unit the determinism oracle
/// compares. Floats are rendered with full roundtrip precision, so
/// "identical summary" means "identical result".
fn summarize_eval(r: &Result<EvalResult, String>) -> String {
    match r {
        Ok(e) => format!(
            "ok: value={:?} aux={:?} rounds={}",
            e.value, e.aux, e.rounds
        ),
        Err(e) => format!("err: {e}"),
    }
}

/// The primary computation's result, workload-independent.
struct EvalResult {
    /// Main output (diameter estimate / sum / …).
    value: f64,
    /// Secondary output (radius for baselines, exact value for quantum).
    aux: f64,
    /// Rounds charged (budgeted rounds for quantum).
    rounds: usize,
    /// Checks derived from this single evaluation.
    checks: Vec<CheckResult>,
    /// See [`ScenarioOutcome::soft_side`].
    soft_side: Option<bool>,
    /// See [`ScenarioOutcome::measurement`].
    measurement: Option<RoundMeasurement>,
}

/// The shared-immutable half of a scenario run: the built graph plus its
/// cached derived metrics ([`GraphContext`]).
///
/// Everything in here is a deterministic function of the spec's *graph
/// identity* (family, `n`, `max_weight`, and — for seeded-random families —
/// the seed), never of the fault plan or workload. The batch engine
/// ([`crate::batch`]) therefore builds one `SharedSetup` per family cell and
/// runs every lane-mate against it; the sequential path builds a private one
/// per scenario. Both paths execute the identical oracle code over it, which
/// is what makes batch results bit-identical to one-at-a-time results.
pub struct SharedSetup {
    ctx: GraphContext,
}

impl SharedSetup {
    /// Build the graph for `spec` and wrap it. Derived metrics stay lazy:
    /// whichever oracle asks first computes them, later lane-mates reuse.
    pub fn build(spec: &ScenarioSpec) -> SharedSetup {
        SharedSetup {
            ctx: GraphContext::new(spec.build_graph()),
        }
    }

    /// The shared graph.
    pub fn graph(&self) -> &WeightedGraph {
        self.ctx.graph()
    }

    /// The network parameter `D` as every oracle uses it: the unweighted
    /// diameter clamped to at least 1 (`usize::MAX` when disconnected),
    /// exactly `metrics::unweighted_diameter(g).max(1)`.
    pub fn d(&self) -> usize {
        self.ctx.unweighted_diameter().unwrap_or(usize::MAX).max(1)
    }

    /// Cached weighted extremes (`metrics::extremes`).
    pub fn extremes(&self) -> &SweepResult {
        self.ctx.extremes()
    }

    /// Cached unweighted extremes (`metrics::unweighted_extremes`).
    pub fn unweighted_extremes(&self) -> &SweepResult {
        self.ctx.unweighted_extremes()
    }
}

/// Runs one scenario through every applicable oracle. Never panics: the
/// evaluation is wrapped, and a panic becomes a failed `no-panic` check.
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioOutcome {
    run_scenario_impl(spec, None)
}

/// [`run_scenario`] against a prebuilt [`SharedSetup`] (the batch-engine
/// entry point). The outcome is bit-identical to `run_scenario(spec)` —
/// the setup only memoizes deterministic functions of the same graph.
pub fn run_scenario_shared(spec: &ScenarioSpec, setup: &SharedSetup) -> ScenarioOutcome {
    run_scenario_impl(spec, Some(setup))
}

fn run_scenario_impl(spec: &ScenarioSpec, shared: Option<&SharedSetup>) -> ScenarioOutcome {
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let owned;
        let setup = match shared {
            Some(s) => s,
            None => {
                owned = SharedSetup::build(spec);
                &owned
            }
        };
        let n = setup.graph().n();
        let d = setup.d();
        let first = evaluate(spec, setup);
        let second = evaluate(spec, setup);
        let (s1, s2) = (summarize_eval(&first), summarize_eval(&second));
        let mut checks;
        let (soft_side, measurement);
        match first {
            Ok(e) => {
                checks = e.checks;
                soft_side = e.soft_side;
                measurement = e.measurement;
            }
            Err(msg) => {
                // A failed evaluation is only acceptable as a *typed*
                // simulator error on a faulted scenario; `evaluate`
                // encodes that in its checks, so an Err here means the
                // scenario-level contract broke.
                checks = vec![CheckResult::fail(Oracle::QualityConsistency, msg)];
                soft_side = None;
                measurement = None;
            }
        }
        if s1 == s2 {
            checks.push(CheckResult::pass(Oracle::Determinism, "replay identical"));
        } else {
            checks.push(CheckResult::fail(
                Oracle::Determinism,
                format!("replay diverged:\n  first:  {s1}\n  second: {s2}"),
            ));
        }
        (n, d, checks, soft_side, measurement)
    }));
    match caught {
        Ok((n, d, mut checks, soft_side, measurement)) => {
            checks.push(CheckResult::pass(Oracle::NoPanic, "no panic"));
            ScenarioOutcome {
                spec: *spec,
                n,
                d,
                checks,
                soft_side,
                measurement,
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            ScenarioOutcome {
                spec: *spec,
                n: spec.n,
                d: 0,
                checks: vec![CheckResult::fail(
                    Oracle::NoPanic,
                    format!("scenario panicked: {msg}"),
                )],
                soft_side: None,
                measurement: None,
            }
        }
    }
}

fn evaluate(spec: &ScenarioSpec, setup: &SharedSetup) -> Result<EvalResult, String> {
    match spec.workload {
        Workload::BaselineExact => evaluate_baseline(spec, setup),
        Workload::QuantumDiameter => {
            evaluate_quantum(spec, setup.graph(), setup.d(), Objective::Diameter)
        }
        Workload::QuantumRadius => {
            evaluate_quantum(spec, setup.graph(), setup.d(), Objective::Radius)
        }
        Workload::PrimitiveAggregate => evaluate_primitive(spec, setup.graph()),
    }
}

fn evaluate_baseline(spec: &ScenarioSpec, setup: &SharedSetup) -> Result<EvalResult, String> {
    let g = setup.graph();
    let cfg = spec.build_config(g);
    let reference = setup.extremes();
    let (diam, rad, stats) = diameter_radius_exact(g, 0, &cfg, WeightMode::Weighted)
        .map_err(|e| format!("weighted baseline failed on a clean network: {e}"))?;
    let mut checks = Vec::new();
    let weighted_ok = diam == reference.diameter && rad == reference.radius;
    checks.push(if weighted_ok {
        CheckResult::pass(
            Oracle::ExactAgreement,
            format!("weighted D={diam:?} R={rad:?} match sweep"),
        )
    } else {
        CheckResult::fail(
            Oracle::ExactAgreement,
            format!(
                "weighted mismatch: distributed (D={diam:?}, R={rad:?}) vs centralized (D={:?}, R={:?})",
                reference.diameter, reference.radius
            ),
        )
    });
    let unweighted_ref = setup.unweighted_extremes();
    let (ud, ur, _) = diameter_radius_exact(g, 0, &cfg, WeightMode::Unweighted)
        .map_err(|e| format!("unweighted baseline failed on a clean network: {e}"))?;
    let unweighted_ok = ud == unweighted_ref.diameter && ur == unweighted_ref.radius;
    checks.push(if unweighted_ok {
        CheckResult::pass(Oracle::ExactAgreement, "unweighted D/R match sweep")
    } else {
        CheckResult::fail(
            Oracle::ExactAgreement,
            format!(
                "unweighted mismatch: distributed (D={ud:?}, R={ur:?}) vs centralized (D={:?}, R={:?})",
                unweighted_ref.diameter, unweighted_ref.radius
            ),
        )
    });
    Ok(EvalResult {
        value: reference.diameter.as_f64(),
        aux: reference.radius.as_f64(),
        rounds: stats.rounds,
        checks,
        soft_side: None,
        measurement: Some(RoundMeasurement {
            kind: ModelKind::ClassicalApsp,
            n: g.n(),
            d: setup.d(),
            max_weight: spec.max_weight,
            rounds: stats.rounds,
        }),
    })
}

fn evaluate_quantum(
    spec: &ScenarioSpec,
    g: &WeightedGraph,
    d: usize,
    objective: Objective,
) -> Result<EvalResult, String> {
    let eps = o1_tolerance(g.n());
    let mut params = WdrParams::for_benchmarks(g.n(), d, eps);
    // Small-graph calibration used throughout the workspace tests: a
    // generous hop budget and Θ(n)-sized sets keep Lemma 3.4's marked
    // mass non-degenerate at corpus sizes.
    params.ell = g.n();
    params.r = (g.n() as f64 * 0.35).max(2.0);
    let cfg = spec.build_config(g);
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x616c_676f_5f76_3101); // "algo_v1"
    match quantum_weighted(g, 0, objective, &params, &cfg, &mut rng) {
        Ok(report) => {
            let mut checks = Vec::new();
            let cap = (1.0 + eps) * (1.0 + eps) * report.exact + 1e-6;
            let floor = report.exact - 1e-6;
            // The deterministic side of the sandwich and the w.h.p. side
            // swap between objectives (Section 3): diameter estimates
            // never exceed (1+ε)²·D; radius estimates never undershoot R.
            let (hard_ok, hard_desc, soft_ok) = match objective {
                Objective::Diameter => (
                    report.estimate <= cap,
                    format!("estimate {} ≤ (1+ε)²·exact {cap}", report.estimate),
                    report.estimate >= floor,
                ),
                Objective::Radius => (
                    report.estimate >= floor,
                    format!("estimate {} ≥ exact {floor}", report.estimate),
                    report.estimate <= cap,
                ),
            };
            if report.confidence.is_guaranteed() {
                checks.push(if hard_ok {
                    CheckResult::pass(Oracle::ApproxRatioHard, hard_desc)
                } else {
                    CheckResult::fail(
                        Oracle::ApproxRatioHard,
                        format!(
                            "{hard_desc} VIOLATED (ε = {eps:.4}, exact {})",
                            report.exact
                        ),
                    )
                });
            }
            let conf_check = match (&report.confidence, spec.is_clean()) {
                (Confidence::Guaranteed, _) => {
                    // Guaranteed under a fault plan is fine (zero-overhead
                    // plan); guaranteed on a clean network is required.
                    CheckResult::pass(Oracle::ConfidenceConsistency, "guaranteed")
                }
                (Confidence::UnderFaults { resilience }, false) => {
                    if resilience.is_zero() {
                        CheckResult::fail(
                            Oracle::ConfidenceConsistency,
                            "UnderFaults with a zero resilience budget",
                        )
                    } else {
                        CheckResult::pass(
                            Oracle::ConfidenceConsistency,
                            "under-faults with non-zero overhead",
                        )
                    }
                }
                (Confidence::UnderFaults { .. }, true) => CheckResult::fail(
                    Oracle::ConfidenceConsistency,
                    "clean scenario reported UnderFaults",
                ),
            };
            checks.push(conf_check);
            let clean = spec.is_clean();
            Ok(EvalResult {
                value: report.estimate,
                aux: report.exact,
                rounds: report.budgeted_rounds,
                checks,
                soft_side: if clean && report.confidence.is_guaranteed() {
                    Some(soft_ok)
                } else {
                    None
                },
                measurement: if clean {
                    Some(RoundMeasurement {
                        kind: ModelKind::QuantumWeighted,
                        n: g.n(),
                        d,
                        max_weight: spec.max_weight,
                        rounds: report.budgeted_rounds,
                    })
                } else {
                    None
                },
            })
        }
        Err(e) if !spec.is_clean() => {
            // Typed simulator errors are an acceptable outcome of an
            // injected fault plan; the contract is "typed error or honest
            // confidence", never a panic or a silently-wrong Guaranteed.
            Ok(EvalResult {
                value: f64::NAN,
                aux: f64::NAN,
                rounds: 0,
                checks: vec![CheckResult::pass(
                    Oracle::ConfidenceConsistency,
                    format!("faulted run surfaced a typed error: {e}"),
                )],
                soft_side: None,
                measurement: None,
            })
        }
        Err(e) => Err(format!("quantum run failed on a clean network: {e}")),
    }
}

fn evaluate_primitive(spec: &ScenarioSpec, g: &WeightedGraph) -> Result<EvalResult, String> {
    let n = g.n();
    // The tree is built on the lossless network so the faulted phase under
    // test is exactly the convergecast.
    let clean = congest_sim::SimConfig::standard(n, g.max_weight()).with_max_rounds(1_000_000);
    let (tree, _) =
        primitives::bfs_tree(g, 0, &clean).map_err(|e| format!("clean bfs_tree failed: {e}"))?;
    let values: Vec<u128> = (0..n as u128).map(|v| v + 1).collect();
    let expected: u128 = values.iter().sum();
    let cfg = spec.build_config(g);
    let check = match primitives::converge_cast(g, 0, &cfg, &tree, &values, Aggregate::Sum) {
        Ok((sum, _)) if sum == expected => CheckResult::pass(
            Oracle::QualityConsistency,
            format!("aggregate exact ({sum})"),
        ),
        Ok((sum, _)) => CheckResult::fail(
            Oracle::QualityConsistency,
            format!("silent wrong aggregate: got {sum}, expected {expected}"),
        ),
        Err(e) if !spec.is_clean() => CheckResult::pass(
            Oracle::QualityConsistency,
            format!("faulted cast surfaced a typed error: {e}"),
        ),
        Err(e) => CheckResult::fail(
            Oracle::QualityConsistency,
            format!("clean cast errored: {e}"),
        ),
    };
    Ok(EvalResult {
        value: expected as f64,
        aux: 0.0,
        rounds: 0,
        checks: vec![check],
        soft_side: None,
        measurement: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_shrinks_with_n() {
        assert!(o1_tolerance(1 << 20) < o1_tolerance(1 << 10));
        assert!(o1_tolerance(16) > 0.0 && o1_tolerance(16) <= 0.25);
    }

    #[test]
    fn oracle_names_are_stable() {
        assert_eq!(Oracle::ApproxRatioSoft.name(), "approx-ratio-soft");
        assert_eq!(Oracle::RoundEnvelope.name(), "round-envelope");
    }
}
