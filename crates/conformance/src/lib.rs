//! # wdr-conformance
//!
//! Conformance and differential-testing subsystem for the Wu–Yao (PODC
//! 2022) reproduction: a seed-replayable scenario corpus, oracles that
//! check every distributed run against the centralized kernels and the
//! paper's stated guarantees, and a round-complexity envelope fitted
//! against the Table 1 asymptotics.
//!
//! The moving parts (see DESIGN.md §3f):
//!
//! * [`scenario`] — [`scenario::ScenarioSpec`], a *pure function of a
//!   `u64` seed*: graph family × `(n, D, weight-range)` regime × fault
//!   plan × parallelism mode × workload. Specs are self-describing so a
//!   failing seed can be shrunk (halve `n`, drop faults, …) and the
//!   shrunken spec replayed verbatim.
//! * [`corpus`] — the on-disk format (`tests/corpus/*.ron`, a hand-rolled
//!   RON subset since no `ron` crate is vendored) and directory loader.
//! * [`oracle`] — runs one scenario and checks it: exact-answer agreement
//!   for the classical baselines, the `(1+o(1))` sandwich for
//!   [`congest_wdr::algorithm::quantum_weighted`] with the `o(1)` term as
//!   the explicit tolerance [`oracle::o1_tolerance`], Quality/Confidence
//!   consistency under faults, seed determinism, and no-panic totality.
//! * [`envelope`] — trace-derived round counts fitted against the
//!   [`congest_wdr::table_one`] asymptotic rows: per-regime constants with
//!   a regression gate, exported as `BENCH_conformance.json`.
//! * [`runner`] — corpus execution, aggregate (soft-side) statistics, the
//!   mutation self-check (`--mutate skip-grover-phase` must make the suite
//!   fail), and the failing-seed shrinker behind `wdr-conform replay`.
//! * [`batch`] — the many-seed batch engine (DESIGN.md §3j): specs grouped
//!   by graph identity, one shared setup per group, lanes fanned across a
//!   dedicated pool with index-ordered reduction, results bit-identical to
//!   the sequential path (experiment E12 gates the speedup).
//!
//! # Examples
//!
//! ```
//! use wdr_conformance::scenario::ScenarioSpec;
//!
//! // The replay invariant: a spec is a pure function of its seed.
//! let spec = ScenarioSpec::from_seed(42);
//! assert_eq!(spec, ScenarioSpec::from_seed(42));
//!
//! // And it roundtrips through the corpus format.
//! let text = wdr_conformance::corpus::to_ron(&spec);
//! assert_eq!(wdr_conformance::corpus::parse(&text).unwrap(), spec);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod corpus;
pub mod envelope;
pub mod oracle;
pub mod runner;
pub mod scenario;
