//! `wdr-conform` — the conformance suite driver.
//!
//! ```text
//! wdr-conform gen    --count 500 --out tests/corpus
//! wdr-conform run    --corpus tests/corpus [--slice 16] [--lanes 8]
//!                    [--timings] [--mutate skip-grover-phase]
//!                    [--bench-out DIR]
//! wdr-conform replay --seed 17 | --spec file.ron
//! ```
//!
//! `run` exits non-zero when any oracle fails (which is the *expected*
//! outcome under `--mutate`: the self-check that the suite catches a
//! seeded approximation bug). `replay` re-runs one seed and, if it fails,
//! greedily shrinks it (halve `n`, drop faults, force sequential,
//! collapse weights) and prints the smallest still-failing spec.

use quantum_sim::mutation::Mutation;
use std::path::PathBuf;
use std::process::ExitCode;
use wdr_conformance::runner::{self, SuiteOptions};
use wdr_conformance::scenario::ScenarioSpec;
use wdr_conformance::{corpus, oracle};

fn usage() -> String {
    "usage:\n  wdr-conform gen --count N --out DIR\n  wdr-conform run --corpus DIR \
     [--slice N] [--lanes L] [--timings] [--mutate skip-grover-phase] [--bench-out DIR]\n  \
     wdr-conform replay (--seed S | --spec FILE) [--mutate skip-grover-phase]"
        .to_string()
}

fn next_value(args: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    args.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("gen") => {
            let mut count = 48u64;
            let mut out = PathBuf::from("tests/corpus");
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--count" => {
                        count = next_value(&mut it, flag)?
                            .parse()
                            .map_err(|e| format!("--count: {e}"))?;
                    }
                    "--out" => out = PathBuf::from(next_value(&mut it, flag)?),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            let specs = runner::generate_corpus(count);
            let paths = corpus::write_corpus(&out, &specs).map_err(|e| e.to_string())?;
            println!("wrote {} scenarios to {}", paths.len(), out.display());
            Ok(ExitCode::SUCCESS)
        }
        Some("run") => {
            let mut dir = PathBuf::from("tests/corpus");
            let mut timings = false;
            let mut options = SuiteOptions {
                bench_out: Some(PathBuf::from("target/experiments")),
                ..SuiteOptions::default()
            };
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--corpus" => dir = PathBuf::from(next_value(&mut it, flag)?),
                    "--slice" => {
                        options.slice = Some(
                            next_value(&mut it, flag)?
                                .parse()
                                .map_err(|e| format!("--slice: {e}"))?,
                        );
                    }
                    "--lanes" => {
                        options.lanes = Some(
                            next_value(&mut it, flag)?
                                .parse()
                                .map_err(|e| format!("--lanes: {e}"))?,
                        );
                    }
                    "--timings" => timings = true,
                    "--mutate" => {
                        let which = next_value(&mut it, flag)?;
                        options.mutate = Some(match which.as_str() {
                            "skip-grover-phase" => Mutation::SkipGroverPhase,
                            other => return Err(format!("unknown mutation '{other}'")),
                        });
                    }
                    "--bench-out" => {
                        options.bench_out = Some(PathBuf::from(next_value(&mut it, flag)?));
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            let report = runner::run_corpus_dir(&dir, &options)?;
            print!("{}", runner::render_report(&report));
            if timings {
                for t in &report.timings {
                    println!(
                        "  seed {:>6}: setup {:>8.3}ms + execute {:>9.3}ms{}",
                        t.seed,
                        t.setup_secs * 1e3,
                        t.execute_secs * 1e3,
                        if t.shared_setup {
                            " (shared setup)"
                        } else {
                            ""
                        }
                    );
                }
            }
            if options.mutate.is_some() {
                // Self-check semantics: the suite is *supposed* to fail.
                // Exit non-zero either way (a mutated run is never a clean
                // gate), but say loudly whether the bug was caught.
                if report.passed() {
                    println!("MUTATION ESCAPED: the armed bug was not detected by any oracle");
                } else {
                    let oracles: Vec<&str> = {
                        let mut names: Vec<&str> =
                            report.failures.iter().map(|f| f.oracle.name()).collect();
                        names.sort_unstable();
                        names.dedup();
                        names
                    };
                    println!("mutation caught by: {}", oracles.join(", "));
                }
                return Ok(ExitCode::FAILURE);
            }
            Ok(if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("replay") => {
            let mut spec: Option<ScenarioSpec> = None;
            let mut mutate: Option<Mutation> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--mutate" => {
                        let which = next_value(&mut it, flag)?;
                        mutate = Some(match which.as_str() {
                            "skip-grover-phase" => Mutation::SkipGroverPhase,
                            other => return Err(format!("unknown mutation '{other}'")),
                        });
                    }
                    "--seed" => {
                        let seed: u64 = next_value(&mut it, flag)?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?;
                        spec = Some(ScenarioSpec::from_seed(seed));
                    }
                    "--spec" => {
                        let path = next_value(&mut it, flag)?;
                        let text = std::fs::read_to_string(&path)
                            .map_err(|e| format!("read {path}: {e}"))?;
                        spec = Some(corpus::parse(&text).map_err(|e| e.to_string())?);
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            let spec = spec.ok_or("replay needs --seed or --spec")?;
            let _guard = mutate.map(quantum_sim::mutation::arm);
            println!("replaying:\n{}", corpus::to_ron(&spec));
            let outcome = oracle::run_scenario(&spec);
            for check in &outcome.checks {
                println!(
                    "  [{}] {} — {}",
                    check.oracle.name(),
                    if check.passed { "ok" } else { "FAIL" },
                    check.detail
                );
            }
            if outcome.failures().is_empty() {
                println!("seed {} passes every oracle", spec.seed);
                return Ok(ExitCode::SUCCESS);
            }
            match runner::shrink(&spec) {
                Some(shrunk) => {
                    println!(
                        "shrunk in {} step(s); smallest failing spec:\n{}\nstill failing: {}",
                        shrunk.steps,
                        corpus::to_ron(&shrunk.shrunk),
                        shrunk.failure
                    );
                }
                None => println!("failure did not reproduce during shrinking"),
            }
            Ok(ExitCode::FAILURE)
        }
        _ => Err(usage()),
    }
}
