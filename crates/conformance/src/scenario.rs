//! Seed-replayable scenarios: each [`ScenarioSpec`] is a pure function of
//! a `u64` seed ([`ScenarioSpec::from_seed`]), yet fully self-describing,
//! so a *shrunk* variant (smaller `n`, faults removed, …) can still be
//! serialized and replayed even though it no longer equals any
//! `from_seed` image.
//!
//! The generation chain is a SplitMix64 stream over the seed — no
//! dependence on ambient RNG state, hash ordering, or time — which is the
//! whole replay contract: `wdr-conform replay --seed S` rebuilds the exact
//! scenario any past run saw for `S`.

use congest_graph::WeightedGraph;
use congest_sim::{FaultPlan, Parallelism, SimConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Graph family of a scenario, mirroring [`congest_graph::generators`].
///
/// The family doubles as the scenario's (unweighted-)diameter regime:
/// `Star` is `D = 2`, `ErdosRenyi`/`ClusterRing` are low-`D`, `Grid` and
/// `BinaryTree` mid-`D`, and `Path`/`Cycle` are `D = Θ(n)`.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum Family {
    /// `path(n, w)` — `D = n − 1`.
    Path,
    /// `cycle(n, w)` — `D = ⌊n/2⌋`.
    Cycle,
    /// `star(n, w)` — `D = 2`.
    Star,
    /// `grid(r, c, w)` with `r·c ≈ n` — `D = Θ(√n)`.
    Grid,
    /// `binary_tree(h, w)` with `2^{h+1}−1 ≤ n` — `D = Θ(log n)`.
    BinaryTree,
    /// `erdos_renyi_connected(n, p, w, rng)` — low `D`.
    ErdosRenyi {
        /// Edge probability.
        p: f64,
    },
    /// `cluster_ring(n, hubs, w, rng)` — `D = Θ(hubs)`.
    ClusterRing {
        /// Number of clique clusters on the ring.
        hubs: usize,
    },
}

/// The fault plan of a scenario, in replayable form.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum FaultSpec {
    /// Lossless synchronous network.
    NoFaults,
    /// Uniform random message drops.
    Drops {
        /// Per-message drop probability.
        rate: f64,
    },
    /// One transient crash window: node `node % n` is down for rounds
    /// `[from, from + len)`.
    Crash {
        /// Node pick (reduced modulo `n` at run time, so it survives
        /// shrinking `n`).
        node: usize,
        /// First crashed round (1-based).
        from: usize,
        /// Window length in rounds.
        len: usize,
    },
}

/// Round-engine execution mode of a scenario.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ParMode {
    /// Sequential round engine.
    Sequential,
    /// Parallel round engine (falls back to sequential without the
    /// `parallel` cargo feature — the scenario is still valid and the
    /// determinism oracle covers the fallback).
    Parallel,
}

/// What the scenario executes and which oracles apply to it.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Classical exact baselines ([`congest_algos::baselines`]) checked
    /// for exact agreement with the centralized sweep kernels. Always
    /// fault-free (the baselines carry no degradation contract).
    BaselineExact,
    /// [`congest_wdr::algorithm::quantum_weighted`] on the diameter,
    /// checked against the `(1+o(1))` sandwich.
    QuantumDiameter,
    /// Same, on the radius (sandwich direction flips).
    QuantumRadius,
    /// The convergecast primitive under faults: `Ok` implies the exact
    /// aggregate, anything else must be a *typed* error, never a panic.
    PrimitiveAggregate,
}

/// One fully-described, replayable scenario.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ScenarioSpec {
    /// The seed this spec was generated from (also salts the graph
    /// weights and the algorithm RNG at run time).
    pub seed: u64,
    /// Graph family.
    pub family: Family,
    /// Requested node count (the family may round it: grids to `r·c`,
    /// trees to `2^{h+1}−1`).
    pub n: usize,
    /// Maximum edge weight (`1` = effectively unweighted).
    pub max_weight: u64,
    /// Fault plan.
    pub faults: FaultSpec,
    /// Round-engine mode.
    pub parallelism: ParMode,
    /// Workload and oracle set.
    pub workload: Workload,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, m: u64) -> u64 {
    splitmix64(state) % m
}

impl ScenarioSpec {
    /// The pure seed → scenario map. Calling this twice with the same
    /// seed yields identical specs (the replay invariant; property-tested
    /// in `tests/conformance.rs`).
    pub fn from_seed(seed: u64) -> ScenarioSpec {
        let mut st = seed;
        let workload = match pick(&mut st, 8) {
            0 | 1 => Workload::BaselineExact,
            2..=4 => Workload::QuantumDiameter,
            5 | 6 => Workload::QuantumRadius,
            _ => Workload::PrimitiveAggregate,
        };
        let family = match pick(&mut st, 7) {
            0 => Family::Path,
            1 => Family::Cycle,
            2 => Family::Star,
            3 => Family::Grid,
            4 => Family::BinaryTree,
            5 => Family::ErdosRenyi {
                p: 0.2 + 0.05 * pick(&mut st, 5) as f64,
            },
            _ => Family::ClusterRing {
                hubs: 2 + pick(&mut st, 3) as usize,
            },
        };
        let (lo, hi) = match workload {
            // Quantum runs simulate every measured phase; keep n modest.
            Workload::QuantumDiameter | Workload::QuantumRadius => (8, 20),
            Workload::BaselineExact => (8, 48),
            Workload::PrimitiveAggregate => (8, 40),
        };
        let n = lo + pick(&mut st, (hi - lo + 1) as u64) as usize;
        let max_weight = match pick(&mut st, 3) {
            0 => 1,
            1 => 8,
            _ => 4096,
        };
        let faults = if workload == Workload::BaselineExact {
            FaultSpec::NoFaults
        } else {
            match pick(&mut st, 8) {
                // Clean runs dominate: they feed the approximation and
                // envelope oracles.
                0..=4 => FaultSpec::NoFaults,
                5 => FaultSpec::Drops {
                    rate: 0.02 + 0.02 * pick(&mut st, 5) as f64,
                },
                _ => FaultSpec::Crash {
                    node: pick(&mut st, 64) as usize,
                    from: 1 + pick(&mut st, 6) as usize,
                    len: 1 + pick(&mut st, 8) as usize,
                },
            }
        };
        let parallelism = if pick(&mut st, 4) == 0 {
            ParMode::Parallel
        } else {
            ParMode::Sequential
        };
        ScenarioSpec {
            seed,
            family,
            n,
            max_weight,
            faults,
            parallelism,
            workload,
        }
        .normalized()
    }

    /// Clamps the spec onto the valid envelope: family minimum sizes,
    /// weight ≥ 1, crash windows inside the run. Idempotent; applied both
    /// after generation and after shrinking.
    pub fn normalized(mut self) -> ScenarioSpec {
        let min_n = match self.family {
            Family::Path | Family::Star => 2,
            Family::Cycle | Family::BinaryTree => 3,
            Family::Grid => 2,
            Family::ErdosRenyi { .. } => 4,
            Family::ClusterRing { hubs } => 2 * hubs.max(1),
        };
        // The quantum pipeline needs a non-trivial graph.
        let min_n = match self.workload {
            Workload::QuantumDiameter | Workload::QuantumRadius => min_n.max(6),
            _ => min_n,
        };
        self.n = self.n.max(min_n);
        self.max_weight = self.max_weight.max(1);
        if let Family::ClusterRing { hubs } = &mut self.family {
            *hubs = (*hubs).max(1);
        }
        if let FaultSpec::Crash { from, len, .. } = &mut self.faults {
            *from = (*from).max(1);
            *len = (*len).max(1);
        }
        if self.workload == Workload::BaselineExact {
            self.faults = FaultSpec::NoFaults;
        }
        self
    }

    /// Builds the scenario's graph. Deterministic in the spec: random
    /// families draw from a ChaCha stream seeded by `seed`.
    pub fn build_graph(&self) -> WeightedGraph {
        use congest_graph::generators as gen;
        let w = self.max_weight;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x6772_6170_685f_7631); // "graph_v1"
        match self.family {
            Family::Path => gen::path(self.n, w),
            Family::Cycle => gen::cycle(self.n.max(3), w),
            Family::Star => gen::star(self.n, w),
            Family::Grid => {
                let rows = (self.n as f64).sqrt().floor().max(1.0) as usize;
                let cols = self.n.div_ceil(rows);
                gen::grid(rows, cols, w)
            }
            Family::BinaryTree => {
                let mut h = 1u32;
                while (1usize << (h + 2)) - 1 <= self.n {
                    h += 1;
                }
                gen::binary_tree(h, w)
            }
            Family::ErdosRenyi { p } => gen::erdos_renyi_connected(self.n, p, w, &mut rng),
            Family::ClusterRing { hubs } => gen::cluster_ring(self.n, hubs, w, &mut rng),
        }
    }

    /// The simulator configuration for this scenario: standard bandwidth,
    /// the fault plan from [`FaultSpec`], and a round cap that is generous
    /// for clean runs but tight enough that a fault-stalled phase fails
    /// fast with `RoundLimitExceeded` instead of spinning.
    pub fn build_config(&self, g: &WeightedGraph) -> SimConfig {
        let max_rounds = match self.faults {
            FaultSpec::NoFaults => 100_000_000,
            _ => 300_000,
        };
        let mut cfg = SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(max_rounds);
        match self.faults {
            FaultSpec::NoFaults => {}
            FaultSpec::Drops { rate } => {
                cfg = cfg.with_faults(FaultPlan::new(self.seed).with_drop_rate(rate));
            }
            FaultSpec::Crash { node, from, len } => {
                let node = node % g.n();
                cfg = cfg.with_faults(FaultPlan::new(self.seed).with_crash(
                    node,
                    from,
                    Some(from + len),
                ));
            }
        }
        cfg = cfg.with_parallelism(match self.parallelism {
            ParMode::Sequential => Parallelism::Sequential,
            ParMode::Parallel => Parallelism::Parallel,
        });
        cfg
    }

    /// `true` when the scenario runs on the lossless network, i.e. the
    /// full paper guarantees (exactness / the `(1+ε)²` sandwich) apply.
    pub fn is_clean(&self) -> bool {
        self.faults == FaultSpec::NoFaults
    }

    /// A coarse size measure that every shrink candidate strictly
    /// decreases, so shrinking always terminates.
    pub fn size_measure(&self) -> u64 {
        let fault_cost = match self.faults {
            FaultSpec::NoFaults => 0,
            _ => 1,
        };
        let par_cost = match self.parallelism {
            ParMode::Sequential => 0,
            ParMode::Parallel => 1,
        };
        let weight_cost = if self.max_weight > 1 { 1 } else { 0 };
        (self.n as u64) * 8 + fault_cost + par_cost + weight_cost
    }

    /// The shrink candidates for this spec, each strictly smaller under
    /// [`ScenarioSpec::size_measure`], ordered most-aggressive first:
    /// halve `n`, drop the fault plan, force sequential, collapse weights
    /// to 1. The replayer keeps shrinking while a candidate still fails.
    pub fn shrink_candidates(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::new();
        let halved = ScenarioSpec {
            n: self.n / 2,
            ..*self
        }
        .normalized();
        if halved.n < self.n {
            out.push(halved);
        }
        if self.faults != FaultSpec::NoFaults {
            out.push(ScenarioSpec {
                faults: FaultSpec::NoFaults,
                ..*self
            });
        }
        if self.parallelism == ParMode::Parallel {
            out.push(ScenarioSpec {
                parallelism: ParMode::Sequential,
                ..*self
            });
        }
        if self.max_weight > 1 {
            out.push(ScenarioSpec {
                max_weight: 1,
                ..*self
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        for seed in 0..200 {
            assert_eq!(ScenarioSpec::from_seed(seed), ScenarioSpec::from_seed(seed));
        }
    }

    #[test]
    fn generated_graphs_build_and_connect() {
        for seed in 0..64 {
            let spec = ScenarioSpec::from_seed(seed);
            let g = spec.build_graph();
            assert!(g.n() >= 2, "seed {seed}: graph too small");
            assert!(g.is_connected(), "seed {seed}: disconnected graph");
            let _ = spec.build_config(&g);
        }
    }

    #[test]
    fn baseline_scenarios_are_fault_free() {
        for seed in 0..256 {
            let spec = ScenarioSpec::from_seed(seed);
            if spec.workload == Workload::BaselineExact {
                assert_eq!(spec.faults, FaultSpec::NoFaults, "seed {seed}");
            }
        }
    }

    #[test]
    fn shrinking_terminates_by_measure() {
        for seed in 0..64 {
            let spec = ScenarioSpec::from_seed(seed);
            for cand in spec.shrink_candidates() {
                assert!(
                    cand.size_measure() < spec.size_measure(),
                    "seed {seed}: candidate {cand:?} does not shrink {spec:?}"
                );
            }
        }
    }

    #[test]
    fn graph_rebuild_is_bit_identical() {
        let spec = ScenarioSpec::from_seed(9217);
        let a = spec.build_graph();
        let b = spec.build_graph();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
