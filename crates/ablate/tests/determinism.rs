//! Snippet-3 discipline: ablation runs are deterministic — same plan +
//! seed ⇒ `assert_eq!` on the whole report AND byte-identical canonical
//! JSON, across the sequential path and 1/2/4 lanes, in both grid and
//! LHS modes; LHS job counts honor `samples`.
//!
//! The property runs on the `Sweep` substrate (pure graph kernels) so
//! the proptest cases stay fast; the lane discipline under test is
//! substrate-independent (`exec::run_jobs`).

use proptest::prelude::*;
use serde_json::Value;
use std::collections::BTreeMap;
use wdr_ablate::{
    run_ablation, run_ablation_with, to_canonical_json_bytes, AblationMode, AblationPlan,
    RunOptions, Substrate, ToleranceSpec,
};

/// A small, fast Sweep-substrate plan over the given factor levels.
fn sweep_plan(
    mode: AblationMode,
    samples: Option<usize>,
    ns: &[u64],
    weights: &[u64],
    family: &str,
) -> AblationPlan {
    let mut factors = BTreeMap::new();
    factors.insert(
        "n".to_string(),
        ns.iter().map(|&n| Value::Number(n as f64)).collect(),
    );
    factors.insert(
        "max_weight".to_string(),
        weights.iter().map(|&w| Value::Number(w as f64)).collect(),
    );
    let mut fixed = BTreeMap::new();
    fixed.insert("family".to_string(), Value::String(family.to_string()));
    let mut tolerances = BTreeMap::new();
    tolerances.insert(
        "failed".to_string(),
        ToleranceSpec {
            max: Some(0.0),
            ..ToleranceSpec::default()
        },
    );
    AblationPlan {
        name: format!("determinism-{}", mode.name()),
        substrate: Substrate::Sweep,
        mode,
        samples,
        factors,
        fixed,
        tolerances,
    }
}

fn run_at(plan: &AblationPlan, seed: u64, lanes: Option<usize>) -> wdr_ablate::RunbookReport {
    run_ablation_with(
        plan,
        seed,
        &RunOptions {
            lanes,
            // Pin the provenance header so the cross-run byte comparison
            // exercises the payload, not just a shared capture.
            meta: Some(wdr_ablate::RunbookMeta {
                schema_version: 1,
                plan_name: plan.name.clone(),
                plan_hash: wdr_ablate::plan_hash(plan),
                commit: "determinism-test".to_string(),
                host_threads: 1,
                seeds: vec![seed],
            }),
        },
    )
    .expect("ablation runs")
}

#[test]
fn reports_and_bytes_identical_across_lane_counts() {
    for mode in [AblationMode::Grid, AblationMode::Lhs] {
        let samples = (mode == AblationMode::Lhs).then_some(5);
        let plan = sweep_plan(mode, samples, &[6, 9, 12], &[1, 7], "path");
        let reference = run_at(&plan, 42, None);
        let reference_bytes = to_canonical_json_bytes(&reference).unwrap();
        for lanes in [1usize, 2, 4] {
            let run = run_at(&plan, 42, Some(lanes));
            assert_eq!(run, reference, "mode {:?}, lanes {lanes}", mode.name());
            assert_eq!(
                to_canonical_json_bytes(&run).unwrap(),
                reference_bytes,
                "mode {:?}, lanes {lanes}",
                mode.name()
            );
        }
    }
}

#[test]
fn grid_and_lhs_modes_differ_but_each_is_stable() {
    let grid = sweep_plan(AblationMode::Grid, None, &[6, 9], &[1, 7], "cycle");
    let lhs = sweep_plan(AblationMode::Lhs, Some(3), &[6, 9], &[1, 7], "cycle");
    let g1 = run_ablation(&grid, 7).unwrap();
    let g2 = run_ablation(&grid, 7).unwrap();
    assert_eq!(g1.jobs.len(), 4);
    assert_eq!(
        to_canonical_json_bytes(&g1).unwrap(),
        to_canonical_json_bytes(&g2).unwrap()
    );
    let l1 = run_ablation(&lhs, 7).unwrap();
    let l2 = run_ablation(&lhs, 7).unwrap();
    assert_eq!(l1.jobs.len(), 3, "LHS honors samples");
    assert_eq!(
        to_canonical_json_bytes(&l1).unwrap(),
        to_canonical_json_bytes(&l2).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ablation_is_byte_deterministic(
        seed in any::<u64>(),
        lanes in 1usize..=4,
        use_lhs in any::<bool>(),
        samples in 1usize..=6,
        n_a in 6u64..=10,
        n_b in 6u64..=10,
        w in 1u64..=9,
        family_idx in 0usize..3,
    ) {
        let family = ["path", "cycle", "star"][family_idx];
        let mode = if use_lhs { AblationMode::Lhs } else { AblationMode::Grid };
        let plan = sweep_plan(
            mode,
            use_lhs.then_some(samples),
            &[n_a, n_b.max(n_a + 1)],
            &[w],
            family,
        );

        // Rerun determinism: two sequential runs agree exactly.
        let first = run_at(&plan, seed, None);
        let second = run_at(&plan, seed, None);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(
            to_canonical_json_bytes(&first).unwrap(),
            to_canonical_json_bytes(&second).unwrap()
        );

        // Lane invariance: the batched path produces the same bytes.
        let batched = run_at(&plan, seed, Some(lanes));
        prop_assert_eq!(&first, &batched);
        prop_assert_eq!(
            to_canonical_json_bytes(&first).unwrap(),
            to_canonical_json_bytes(&batched).unwrap()
        );

        // LHS job count honors `samples`; grids are full products.
        if use_lhs {
            prop_assert_eq!(first.jobs.len(), samples);
        } else {
            prop_assert_eq!(first.jobs.len(), 2);
        }
    }
}
