//! Golden-report contract: the checked-in plan fixture must produce the
//! checked-in canonical report, byte for byte. Any change to the plan
//! schema, the job expander, the Sweep substrate, or the canonical JSON
//! writer shows up here as a readable fixture diff in CI.
//!
//! After a *deliberate* schema change, regenerate the expectation with
//! `WDR_ABLATE_BLESS=1 cargo test -p wdr-ablate --test golden` and
//! review the diff.

use wdr_ablate::{plan_hash, run_ablation_with, to_canonical_json_bytes, RunOptions, RunbookMeta};

const PLAN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_plan.ron"
);
const REPORT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_report.json"
);
const SEED: u64 = 7;

#[test]
fn golden_plan_produces_golden_report_bytes() {
    let text = std::fs::read_to_string(PLAN_PATH).expect("read golden plan");
    let plan = wdr_ablate::plan::parse(&text).expect("parse golden plan");

    // Provenance is pinned so the fixture is stable across machines;
    // plan_hash stays live so plan edits invalidate the report.
    let options = RunOptions {
        lanes: Some(2),
        meta: Some(RunbookMeta {
            schema_version: 1,
            plan_name: plan.name.clone(),
            plan_hash: plan_hash(&plan),
            commit: "golden".to_string(),
            host_threads: 1,
            seeds: vec![SEED],
        }),
    };
    let report = run_ablation_with(&plan, SEED, &options).expect("run golden plan");
    assert!(report.passed, "golden plan tolerances must hold");
    let bytes = to_canonical_json_bytes(&report).expect("canonicalize");

    if std::env::var_os("WDR_ABLATE_BLESS").is_some() {
        std::fs::write(REPORT_PATH, &bytes).expect("bless golden report");
        eprintln!("blessed {} ({} bytes)", REPORT_PATH, bytes.len());
        return;
    }

    let expected = std::fs::read(REPORT_PATH)
        .expect("read golden report (run with WDR_ABLATE_BLESS=1 to create it)");
    assert_eq!(
        bytes, expected,
        "canonical report drifted from tests/fixtures/golden_report.json; \
         if the change is deliberate, re-bless with WDR_ABLATE_BLESS=1"
    );
}

#[test]
fn golden_report_fixture_is_canonical_json() {
    let expected = std::fs::read_to_string(REPORT_PATH).expect("read golden report");
    let value = serde_json::from_str(&expected).expect("fixture parses as JSON");
    let meta = value.get("meta").expect("meta present");
    assert_eq!(
        meta.get("commit").and_then(|c| c.as_str()),
        Some("golden"),
        "fixture was generated with pinned provenance"
    );
    assert_eq!(value.get("passed").and_then(|p| p.as_bool()), Some(true));
    // No volatile whitespace: the fixture is the canonical byte form.
    assert!(!expected.contains('\n'));
    assert!(expected.starts_with("{\"jobs\":[{"));
}
