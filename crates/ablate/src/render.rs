//! Markdown/CSV rendering of runbook reports via the shared
//! [`Table`] machinery (`wdr_metrics::table`).
//!
//! Rendering works off the canonical JSON (a `serde_json::Value`), so
//! `wdr ablate render` can format any report file without re-running its
//! plan.

use serde_json::Value;
use wdr_metrics::table::Table;

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Null => "-".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Number(x) => format!("{x}"),
        Value::String(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

fn compact_map(v: Option<&Value>) -> String {
    let Some(Value::Object(map)) = v else {
        return "-".to_string();
    };
    map.iter()
        .map(|(k, v)| format!("{k}={}", fmt_value(v)))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The per-job table of a report: id, parameter assignment, metrics, and
/// error column.
pub fn jobs_table(report: &Value) -> Result<Table, String> {
    let name = report
        .get("meta")
        .and_then(|m| m.get("plan_name"))
        .and_then(Value::as_str)
        .unwrap_or("?");
    let mut table = Table::new(
        "ablate",
        &format!("{name} — jobs"),
        &["job", "params", "metrics", "error"],
    );
    let jobs = report
        .get("jobs")
        .and_then(Value::as_array)
        .ok_or("report has no 'jobs' array")?;
    for job in jobs {
        table.push(vec![
            job.get("id").and_then(Value::as_str).unwrap_or("?").into(),
            compact_map(job.get("params")),
            compact_map(job.get("metrics")),
            job.get("error")
                .map(fmt_value)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    Ok(table)
}

/// The verdict table of a report: one row per tolerance evaluation.
pub fn verdicts_table(report: &Value) -> Result<Table, String> {
    let mut table = Table::new(
        "ablate-verdicts",
        "tolerance verdicts",
        &["job", "metric", "value", "ok", "detail"],
    );
    let verdicts = report
        .get("verdicts")
        .and_then(Value::as_array)
        .ok_or("report has no 'verdicts' array")?;
    for v in verdicts {
        table.push(vec![
            v.get("job_id")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .into(),
            v.get("metric")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .into(),
            v.get("value").map(fmt_value).unwrap_or_else(|| "-".into()),
            v.get("ok")
                .and_then(Value::as_bool)
                .map(|b| if b { "ok" } else { "FAIL" })
                .unwrap_or("?")
                .into(),
            v.get("detail").and_then(Value::as_str).unwrap_or("").into(),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{self, to_canonical_json_bytes};

    #[test]
    fn renders_report_json() {
        // Round-trip a real report through its canonical JSON.
        let plan = crate::plan::parse(
            r#"Ablation(
                name: "render-test",
                substrate: Sweep,
                mode: Grid,
                samples: None,
                factors: { "n": [8, 10], },
                fixed: { "family": "path", },
                tolerances: { "diameter": Tol(min: Some(1.0), max: None, abs: None, rel: None), },
            )"#,
        )
        .unwrap();
        let run = crate::run_ablation(&plan, 3).unwrap();
        let bytes = to_canonical_json_bytes(&run).unwrap();
        let value = serde_json::from_str(&String::from_utf8(bytes).unwrap()).unwrap();
        let jobs = jobs_table(&value).unwrap();
        assert_eq!(jobs.rows.len(), 2);
        assert!(jobs.to_markdown().contains("job-0000"));
        assert!(jobs.to_csv().contains("family=path"));
        let verdicts = verdicts_table(&value).unwrap();
        assert_eq!(verdicts.rows.len(), 2);
        assert!(verdicts.to_markdown().contains("diameter"));
        let _ = report::job_fingerprint(&run.jobs[0]);
    }
}
