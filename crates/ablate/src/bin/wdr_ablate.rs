//! Standalone `wdr-ablate` binary (the `wdr ablate` subcommand is the
//! same entry point).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    wdr_ablate::cli_main(&args)
}
