//! # wdr-ablate
//!
//! Declarative ablation/sweep harness: a [`AblationPlan`] (factors ×
//! fixed params × tolerances, parsed from the workspace's hand-rolled RON
//! subset) expands into a deterministic job list (full grid or seeded
//! Latin-hypercube sample), each job runs on one of the existing
//! substrates (conformance slices, quantum runs, sweep kernels, the round
//! engine, serve load mixes), and the results land in a [`RunbookReport`]
//! with full provenance whose canonical JSON bytes are identical across
//! reruns and lane counts.
//!
//! Tolerances turn every report into a gate: `wdr ablate run`/`check`
//! exit nonzero *naming the violated metric* when a measured value
//! escapes its [`ToleranceSpec`].
//!
//! # Examples
//!
//! ```
//! use wdr_ablate::{run_ablation, to_canonical_json_bytes, plan};
//!
//! let plan = plan::parse(r#"Ablation(
//!     name: "doc",
//!     substrate: Sweep,
//!     mode: Grid,
//!     samples: None,
//!     factors: { "n": [6, 8], },
//!     fixed: { "family": "cycle", },
//!     tolerances: { "failed": Tol(min: None, max: Some(0.0), abs: None, rel: None), },
//! )"#).unwrap();
//! let report = run_ablation(&plan, 101).unwrap();
//! assert_eq!(report.jobs.len(), 2);
//! assert!(report.passed);
//! // Byte-deterministic: same plan + seed ⇒ same bytes.
//! assert_eq!(
//!     to_canonical_json_bytes(&report).unwrap(),
//!     to_canonical_json_bytes(&run_ablation(&plan, 101).unwrap()).unwrap(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod expand;
pub mod plan;
pub mod render;
pub mod report;

pub use expand::{expand, Job};
pub use plan::{plan_hash, AblationMode, AblationPlan, Substrate, ToleranceSpec};
pub use report::{to_canonical_json_bytes, RunbookMeta, RunbookReport, Verdict};

use std::process::ExitCode;

/// Execution options for [`run_ablation_with`].
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// `None` = sequential reference path; `Some(l)` fans graph-identity
    /// groups across `l` lanes. Either way the report bytes are
    /// identical.
    pub lanes: Option<usize>,
    /// Override the captured provenance header (used by the golden
    /// fixture, which must not depend on the recording host).
    pub meta: Option<RunbookMeta>,
}

/// Expands, executes, and checks a plan with default options
/// (sequential, captured provenance).
///
/// # Errors
///
/// Fails on malformed plans (empty factors, missing LHS sample count) or
/// an un-buildable lane pool; per-job substrate failures do *not* error —
/// they land in the job rows with `failed = 1`.
pub fn run_ablation(plan: &AblationPlan, root_seed: u64) -> Result<RunbookReport, String> {
    run_ablation_with(plan, root_seed, &RunOptions::default())
}

/// [`run_ablation`] with explicit lane count / provenance options.
///
/// # Errors
///
/// Same contract as [`run_ablation`].
pub fn run_ablation_with(
    plan: &AblationPlan,
    root_seed: u64,
    options: &RunOptions,
) -> Result<RunbookReport, String> {
    let jobs = expand::expand(plan, root_seed)?;
    let outcomes = exec::run_jobs(plan.substrate, &jobs, options.lanes)?;
    let job_rows = report::job_reports(&jobs, &outcomes);
    let (verdicts, passed) = report::check_tolerances(plan, &job_rows);

    // The embedded snapshot: deterministic counters only (no timings).
    let registry = wdr_metrics::MetricsRegistry::new();
    let jobs_c = registry.counter("ablate.jobs");
    let errors_c = registry.counter("ablate.job_errors");
    let violations_c = registry.counter("ablate.violations");
    jobs_c.add(job_rows.len() as u64);
    errors_c.add(job_rows.iter().filter(|j| j.error.is_some()).count() as u64);
    violations_c.add(verdicts.iter().filter(|v| !v.ok).count() as u64);
    let metrics = registry.snapshot().to_pairs();

    let meta = options
        .meta
        .clone()
        .unwrap_or_else(|| RunbookMeta::capture(plan, root_seed));
    Ok(RunbookReport {
        meta,
        substrate: plan.substrate.name().to_string(),
        mode: plan.mode.name().to_string(),
        jobs: job_rows,
        verdicts,
        metrics,
        passed,
    })
}

const USAGE: &str = "\
wdr ablate — declarative ablation/sweep harness

USAGE:
    wdr ablate run    --plan FILE [--seed N] [--lanes N] [--out FILE]
    wdr ablate check  --plan FILE [--seed N] [--lanes N] [--against FILE]
    wdr ablate render --report FILE [--format md|csv]

run     expands and executes the plan, writes the canonical-JSON runbook
        to --out (default: stdout), prints the verdict table to stderr;
        exits 1 naming the violated metric on a tolerance failure.
check   re-runs the plan and gates on its tolerances (exit 1 names the
        first violated metric); with --against, additionally requires the
        produced bytes to equal the given report file (exit 1 on drift).
render  formats an existing report as markdown (default) or CSV tables.

Default seed: 101.";

fn next_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

struct CliRun {
    plan_path: Option<String>,
    seed: u64,
    lanes: Option<usize>,
    out: Option<String>,
    against: Option<String>,
    report_path: Option<String>,
    format: String,
}

fn parse_cli(args: &[String]) -> Result<CliRun, String> {
    let mut cli = CliRun {
        plan_path: None,
        seed: 101,
        lanes: None,
        out: None,
        against: None,
        report_path: None,
        format: "md".to_string(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--plan" => cli.plan_path = Some(next_value(&mut it, "--plan")?),
            "--seed" => {
                cli.seed = next_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--lanes" => {
                cli.lanes = Some(
                    next_value(&mut it, "--lanes")?
                        .parse()
                        .map_err(|e| format!("bad --lanes: {e}"))?,
                );
            }
            "--out" => cli.out = Some(next_value(&mut it, "--out")?),
            "--against" => cli.against = Some(next_value(&mut it, "--against")?),
            "--report" => cli.report_path = Some(next_value(&mut it, "--report")?),
            "--format" => cli.format = next_value(&mut it, "--format")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(cli)
}

fn load_plan(cli: &CliRun) -> Result<AblationPlan, String> {
    let path = cli.plan_path.as_ref().ok_or("missing --plan FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    plan::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn first_violation(report: &RunbookReport) -> Option<&Verdict> {
    report.verdicts.iter().find(|v| !v.ok)
}

fn run_and_report(cli: &CliRun) -> Result<(RunbookReport, Vec<u8>), String> {
    let plan = load_plan(cli)?;
    let options = RunOptions {
        lanes: cli.lanes,
        meta: None,
    };
    let report = run_ablation_with(&plan, cli.seed, &options)?;
    let bytes = to_canonical_json_bytes(&report)?;
    Ok((report, bytes))
}

fn print_verdicts(report: &RunbookReport) {
    let bytes = to_canonical_json_bytes(report).expect("canonical serialization");
    let value =
        serde_json::from_str(&String::from_utf8(bytes).expect("utf8")).expect("canonical parses");
    if let Ok(table) = render::verdicts_table(&value) {
        eprint!("{}", table.to_markdown());
    }
}

fn cmd_run(cli: &CliRun) -> Result<ExitCode, String> {
    let (report, bytes) = run_and_report(cli)?;
    match &cli.out {
        Some(path) => {
            std::fs::write(path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!(
                "[ablate] wrote {} ({} jobs, {} verdicts)",
                path,
                report.jobs.len(),
                report.verdicts.len()
            );
        }
        None => {
            use std::io::Write as _;
            std::io::stdout()
                .write_all(&bytes)
                .map_err(|e| format!("write stdout: {e}"))?;
            println!();
        }
    }
    print_verdicts(&report);
    if let Some(bad) = first_violation(&report) {
        eprintln!(
            "[ablate] FAIL tolerance violation: metric '{}' ({})",
            bad.metric, bad.detail
        );
        return Ok(ExitCode::FAILURE);
    }
    eprintln!("[ablate] PASS all tolerances held");
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(cli: &CliRun) -> Result<ExitCode, String> {
    let (report, bytes) = run_and_report(cli)?;
    if let Some(path) = &cli.against {
        let expected = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        if expected != bytes {
            eprintln!(
                "[ablate] FAIL report drift: produced bytes differ from {path} \
                 ({} vs {} bytes)",
                bytes.len(),
                expected.len()
            );
            return Ok(ExitCode::FAILURE);
        }
        eprintln!("[ablate] report bytes match {path}");
    }
    print_verdicts(&report);
    if let Some(bad) = first_violation(&report) {
        eprintln!(
            "[ablate] FAIL tolerance violation: metric '{}' ({})",
            bad.metric, bad.detail
        );
        return Ok(ExitCode::FAILURE);
    }
    eprintln!("[ablate] PASS all tolerances held");
    Ok(ExitCode::SUCCESS)
}

fn cmd_render(cli: &CliRun) -> Result<ExitCode, String> {
    let path = cli.report_path.as_ref().ok_or("missing --report FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value = serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e:?}"))?;
    let jobs = render::jobs_table(&value)?;
    let verdicts = render::verdicts_table(&value)?;
    match cli.format.as_str() {
        "md" => {
            print!("{}", jobs.to_markdown());
            print!("{}", verdicts.to_markdown());
        }
        "csv" => {
            print!("{}", jobs.to_csv());
            print!("{}", verdicts.to_csv());
        }
        other => return Err(format!("unknown --format '{other}' (md|csv)")),
    }
    Ok(ExitCode::SUCCESS)
}

/// The `wdr ablate` / `wdr-ablate` CLI entry point. Exit codes: 0 on
/// success, 1 on tolerance violation or report drift, 2 on usage or I/O
/// errors.
pub fn cli_main(args: &[String]) -> ExitCode {
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let cli = match parse_cli(rest) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "run" => cmd_run(&cli),
        "check" => cmd_check(&cli),
        "render" => cmd_render(&cli),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand '{other}'")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;
    use std::collections::BTreeMap;

    fn tiny_plan() -> AblationPlan {
        let mut factors = BTreeMap::new();
        factors.insert(
            "n".to_string(),
            vec![Value::Number(6.0), Value::Number(9.0)],
        );
        let mut fixed = BTreeMap::new();
        fixed.insert("family".to_string(), Value::String("star".into()));
        let mut tolerances = BTreeMap::new();
        tolerances.insert(
            "radius".to_string(),
            ToleranceSpec {
                min: Some(0.5),
                max: None,
                abs: None,
                rel: None,
            },
        );
        AblationPlan {
            name: "lib-test".into(),
            substrate: Substrate::Sweep,
            mode: AblationMode::Grid,
            samples: None,
            factors,
            fixed,
            tolerances,
        }
    }

    #[test]
    fn run_ablation_produces_passing_runbook() {
        let report = run_ablation(&tiny_plan(), 5).unwrap();
        assert_eq!(report.jobs.len(), 2);
        assert!(report.passed);
        assert_eq!(report.substrate, "Sweep");
        // Snapshot pairs present and deterministic.
        assert!(report
            .metrics
            .iter()
            .any(|(k, v)| k == "ablate.jobs" && *v == 2.0));
        assert!(report.jobs.iter().all(|j| !j.fingerprint.is_empty()));
    }

    #[test]
    fn tightened_tolerance_fails_naming_metric() {
        let mut plan = tiny_plan();
        plan.tolerances.insert(
            "radius".to_string(),
            ToleranceSpec {
                min: None,
                max: Some(0.0),
                abs: None,
                rel: None,
            },
        );
        let report = run_ablation(&plan, 5).unwrap();
        assert!(!report.passed);
        let bad = report.verdicts.iter().find(|v| !v.ok).unwrap();
        assert_eq!(bad.metric, "radius");
        assert!(bad.detail.contains("'radius'"));
        assert!(report
            .metrics
            .iter()
            .any(|(k, v)| k == "ablate.violations" && *v > 0.0));
    }

    #[test]
    fn injected_meta_is_verbatim() {
        let plan = tiny_plan();
        let meta = RunbookMeta {
            schema_version: 1,
            plan_name: plan.name.clone(),
            plan_hash: plan_hash(&plan),
            commit: "golden".to_string(),
            host_threads: 1,
            seeds: vec![5],
        };
        let report = run_ablation_with(
            &plan,
            5,
            &RunOptions {
                lanes: Some(2),
                meta: Some(meta.clone()),
            },
        )
        .unwrap();
        assert_eq!(report.meta, meta);
    }
}
