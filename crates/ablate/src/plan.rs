//! The declarative [`AblationPlan`] and its on-disk format: a hand-rolled
//! RON subset extending the grammar of `wdr_conformance::corpus` (no `ron`
//! crate is vendored) with strings, lists, maps, negative numbers, and
//! `Option` values:
//!
//! ```text
//! Ablation(
//!     name: "e13-quantum-sweep",
//!     substrate: Quantum,
//!     mode: Grid,
//!     samples: None,
//!     factors: {
//!         "eps": [0.08, 0.2, 0.45],
//!         "max_weight": [1, 8, 4096],
//!     },
//!     fixed: {
//!         "family": "grid",
//!         "n": 18,
//!     },
//!     tolerances: {
//!         "ratio": Tol(min: Some(0.5), max: Some(3.0), abs: None, rel: None),
//!     },
//! )
//! ```
//!
//! Floats are written with Rust's shortest-roundtrip formatting and maps
//! are [`BTreeMap`]s, so `parse(to_ron(plan)) == plan` exactly
//! (property-tested) and [`to_ron`] is a canonical form: the
//! [`plan_hash`] stamped into every runbook is the FNV-1a of these bytes.

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use wdr_metrics::trajectory::fnv1a_hex;

/// How the factor space is explored.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AblationMode {
    /// Full cartesian product of every factor's levels.
    Grid,
    /// Seeded Latin-hypercube sample of `samples` jobs (each factor's
    /// strata are covered exactly once across the sample).
    Lhs,
}

impl AblationMode {
    /// The stable identifier used in plans and reports.
    pub fn name(self) -> &'static str {
        match self {
            AblationMode::Grid => "Grid",
            AblationMode::Lhs => "Lhs",
        }
    }
}

/// Which existing execution substrate each job maps onto.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Substrate {
    /// A slice of the conformance suite (`runner::run_suite` over
    /// `generate_corpus`).
    Conformance,
    /// One quantum weighted-diameter/radius run per job
    /// (`congest_wdr::algorithm::quantum_weighted`, oracle calibration).
    Quantum,
    /// Pruned sweep extremes on a generated family
    /// (`congest_graph::sweep` via `GraphContext`).
    Sweep,
    /// An E8-style round-engine run (BFS tree + converge-cast under an
    /// optional fault plan).
    RoundEngine,
    /// An E10-style serve load mix against the in-process `QueryEngine`
    /// and content-addressed `ResultCache`.
    ServeCache,
}

impl Substrate {
    /// The stable identifier used in plans and reports.
    pub fn name(self) -> &'static str {
        match self {
            Substrate::Conformance => "Conformance",
            Substrate::Quantum => "Quantum",
            Substrate::Sweep => "Sweep",
            Substrate::RoundEngine => "RoundEngine",
            Substrate::ServeCache => "ServeCache",
        }
    }
}

/// Acceptance bounds for one report metric.
///
/// A measured value `v` passes when
/// `min − slack ≤ v ≤ max + slack` with `slack = abs + rel·|v|`
/// (absent bounds are `−∞`/`+∞`; absent slacks are `0`).
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct ToleranceSpec {
    /// Lower bound (inclusive, before slack widening).
    pub min: Option<f64>,
    /// Upper bound (inclusive, before slack widening).
    pub max: Option<f64>,
    /// Absolute slack added on both sides.
    pub abs: Option<f64>,
    /// Relative slack (× |value|) added on both sides.
    pub rel: Option<f64>,
}

impl ToleranceSpec {
    /// Evaluates the spec against a measured value. Returns
    /// `Err(detail)` naming the violated bound on failure.
    pub fn evaluate(&self, value: f64) -> Result<(), String> {
        let slack = self.abs.unwrap_or(0.0) + self.rel.unwrap_or(0.0) * value.abs();
        if !value.is_finite() {
            return Err(format!("value {value} is not finite"));
        }
        if let Some(min) = self.min {
            if value < min - slack {
                return Err(format!("value {value} < min {min} (slack {slack})"));
            }
        }
        if let Some(max) = self.max {
            if value > max + slack {
                return Err(format!("value {value} > max {max} (slack {slack})"));
            }
        }
        Ok(())
    }
}

/// A declarative ablation: factor lists to explore, fixed parameters, and
/// per-metric acceptance tolerances. See the module docs for the on-disk
/// grammar and [`mod@crate::expand`] for job semantics.
#[derive(Clone, Debug, PartialEq)]
pub struct AblationPlan {
    /// Human-readable plan name (stamped into the runbook).
    pub name: String,
    /// Which substrate the jobs run on.
    pub substrate: Substrate,
    /// Grid or Latin-hypercube exploration.
    pub mode: AblationMode,
    /// LHS sample count (`None` for grid plans).
    pub samples: Option<usize>,
    /// Factor name → list of levels to explore.
    pub factors: BTreeMap<String, Vec<Value>>,
    /// Parameters shared by every job.
    pub fixed: BTreeMap<String, Value>,
    /// Metric name → acceptance bounds.
    pub tolerances: BTreeMap<String, ToleranceSpec>,
}

/// The FNV-1a 64 hash of the plan's canonical [`to_ron`] bytes — the
/// provenance identifier stamped into every runbook report.
pub fn plan_hash(plan: &AblationPlan) -> String {
    fnv1a_hex(to_ron(plan).as_bytes())
}

fn write_ron_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
}

fn write_ron_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("None"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => {
            let _ = write!(out, "{x:?}");
        }
        Value::String(s) => write_ron_string(s, out),
        Value::Array(_) | Value::Object(_) => {
            unreachable!("plan values are scalars (enforced by the parser)")
        }
    }
}

fn write_ron_opt(v: Option<f64>, out: &mut String) {
    match v {
        None => out.push_str("None"),
        Some(x) => {
            let _ = write!(out, "Some({x:?})");
        }
    }
}

/// Serializes a plan into its canonical on-disk form (fixed field order,
/// sorted maps, shortest-roundtrip floats).
pub fn to_ron(plan: &AblationPlan) -> String {
    let mut s = String::new();
    s.push_str("Ablation(\n");
    s.push_str("    name: ");
    write_ron_string(&plan.name, &mut s);
    s.push_str(",\n");
    writeln!(s, "    substrate: {},", plan.substrate.name()).unwrap();
    writeln!(s, "    mode: {},", plan.mode.name()).unwrap();
    match plan.samples {
        None => s.push_str("    samples: None,\n"),
        Some(k) => {
            writeln!(s, "    samples: Some({k}),").unwrap();
        }
    }
    s.push_str("    factors: {\n");
    for (name, levels) in &plan.factors {
        s.push_str("        ");
        write_ron_string(name, &mut s);
        s.push_str(": [");
        for (i, level) in levels.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write_ron_value(level, &mut s);
        }
        s.push_str("],\n");
    }
    s.push_str("    },\n");
    s.push_str("    fixed: {\n");
    for (name, value) in &plan.fixed {
        s.push_str("        ");
        write_ron_string(name, &mut s);
        s.push_str(": ");
        write_ron_value(value, &mut s);
        s.push_str(",\n");
    }
    s.push_str("    },\n");
    s.push_str("    tolerances: {\n");
    for (name, tol) in &plan.tolerances {
        s.push_str("        ");
        write_ron_string(name, &mut s);
        s.push_str(": Tol(min: ");
        write_ron_opt(tol.min, &mut s);
        s.push_str(", max: ");
        write_ron_opt(tol.max, &mut s);
        s.push_str(", abs: ");
        write_ron_opt(tol.abs, &mut s);
        s.push_str(", rel: ");
        write_ron_opt(tol.rel, &mut s);
        s.push_str("),\n");
    }
    s.push_str("    },\n");
    s.push_str(")\n");
    s
}

/// A parse failure: what was expected, and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    UInt(u64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Colon,
    Comma,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'/' if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn string(&mut self) -> Result<Tok, ParseError> {
        // Opening quote already consumed by the caller.
        let mut out = String::new();
        loop {
            let Some(&c) = self.src.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(Tok::Str(out)),
                b'\\' => {
                    let Some(&esc) = self.src.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                    }
                }
                other => {
                    // Multi-byte UTF-8 passes through byte by byte; the
                    // source is a &str so the bytes are valid.
                    if other.is_ascii() {
                        out.push(other as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.src.len() && (self.src[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        out.push_str(std::str::from_utf8(&self.src[start..end]).map_err(|_| {
                            ParseError {
                                message: "invalid UTF-8 in string".into(),
                                offset: start,
                            }
                        })?);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        self.skip_ws();
        let Some(&c) = self.src.get(self.pos) else {
            return Ok(Tok::Eof);
        };
        match c {
            b'(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            b'[' => {
                self.pos += 1;
                Ok(Tok::LBracket)
            }
            b']' => {
                self.pos += 1;
                Ok(Tok::RBracket)
            }
            b'{' => {
                self.pos += 1;
                Ok(Tok::LBrace)
            }
            b'}' => {
                self.pos += 1;
                Ok(Tok::RBrace)
            }
            b':' => {
                self.pos += 1;
                Ok(Tok::Colon)
            }
            b',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            b'"' => {
                self.pos += 1;
                self.string()
            }
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                let digits_start = self.pos;
                let mut is_float = false;
                while self.pos < self.src.len() {
                    match self.src[self.pos] {
                        b'0'..=b'9' => self.pos += 1,
                        b'.' | b'e' | b'E' if self.pos > digits_start => {
                            is_float = true;
                            self.pos += 1;
                        }
                        b'-' | b'+' if is_float => self.pos += 1,
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                if !is_float && c != b'-' {
                    text.parse::<u64>()
                        .map(Tok::UInt)
                        .map_err(|e| self.err(format!("bad integer '{text}': {e}")))
                } else {
                    text.parse::<f64>()
                        .map(Tok::Float)
                        .map_err(|e| self.err(format!("bad number '{text}': {e}")))
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = self.pos;
                while self
                    .src
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    self.pos += 1;
                }
                Ok(Tok::Ident(
                    std::str::from_utf8(&self.src[start..self.pos])
                        .unwrap()
                        .to_string(),
                ))
            }
            other => Err(self.err(format!("unexpected byte '{}'", other as char))),
        }
    }

    fn peek(&mut self) -> Result<Tok, ParseError> {
        let save = self.pos;
        let tok = self.next();
        self.pos = save;
        tok
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(self.err(format!("expected {want:?}, found {got:?}")))
        }
    }

    fn expect_field(&mut self, name: &str) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Ident(id) if id == name => self.expect(&Tok::Colon),
            other => Err(self.err(format!("expected field '{name}', found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(id) => Ok(id),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn string_lit(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Str(s) => Ok(s),
            other => Err(self.err(format!("expected string, found {other:?}"))),
        }
    }

    /// A scalar plan value: number, string, or bool.
    fn value(&mut self) -> Result<Value, ParseError> {
        match self.next()? {
            Tok::UInt(v) => Ok(Value::Number(v as f64)),
            Tok::Float(v) => Ok(Value::Number(v)),
            Tok::Str(s) => Ok(Value::String(s)),
            Tok::Ident(id) if id == "true" => Ok(Value::Bool(true)),
            Tok::Ident(id) if id == "false" => Ok(Value::Bool(false)),
            other => Err(self.err(format!("expected scalar value, found {other:?}"))),
        }
    }

    /// `None` or `Some(<f64>)`.
    fn opt_f64(&mut self) -> Result<Option<f64>, ParseError> {
        match self.next()? {
            Tok::Ident(id) if id == "None" => Ok(None),
            Tok::Ident(id) if id == "Some" => {
                self.expect(&Tok::LParen)?;
                let v = match self.next()? {
                    Tok::UInt(v) => v as f64,
                    Tok::Float(v) => v,
                    other => return Err(self.err(format!("expected number, found {other:?}"))),
                };
                self.expect(&Tok::RParen)?;
                Ok(Some(v))
            }
            other => Err(self.err(format!("expected None/Some, found {other:?}"))),
        }
    }

    /// `None` or `Some(<usize>)`.
    fn opt_usize(&mut self) -> Result<Option<usize>, ParseError> {
        match self.next()? {
            Tok::Ident(id) if id == "None" => Ok(None),
            Tok::Ident(id) if id == "Some" => {
                self.expect(&Tok::LParen)?;
                let v = match self.next()? {
                    Tok::UInt(v) => v as usize,
                    other => return Err(self.err(format!("expected integer, found {other:?}"))),
                };
                self.expect(&Tok::RParen)?;
                Ok(Some(v))
            }
            other => Err(self.err(format!("expected None/Some, found {other:?}"))),
        }
    }
}

fn parse_factor_map(lx: &mut Lexer<'_>) -> Result<BTreeMap<String, Vec<Value>>, ParseError> {
    lx.expect(&Tok::LBrace)?;
    let mut map = BTreeMap::new();
    loop {
        if lx.peek()? == Tok::RBrace {
            lx.expect(&Tok::RBrace)?;
            return Ok(map);
        }
        let key = lx.string_lit()?;
        lx.expect(&Tok::Colon)?;
        lx.expect(&Tok::LBracket)?;
        let mut levels = Vec::new();
        loop {
            if lx.peek()? == Tok::RBracket {
                lx.expect(&Tok::RBracket)?;
                break;
            }
            levels.push(lx.value()?);
            if lx.peek()? == Tok::Comma {
                lx.expect(&Tok::Comma)?;
            }
        }
        if map.insert(key.clone(), levels).is_some() {
            return Err(lx.err(format!("duplicate factor '{key}'")));
        }
        lx.expect(&Tok::Comma)?;
    }
}

fn parse_fixed_map(lx: &mut Lexer<'_>) -> Result<BTreeMap<String, Value>, ParseError> {
    lx.expect(&Tok::LBrace)?;
    let mut map = BTreeMap::new();
    loop {
        if lx.peek()? == Tok::RBrace {
            lx.expect(&Tok::RBrace)?;
            return Ok(map);
        }
        let key = lx.string_lit()?;
        lx.expect(&Tok::Colon)?;
        let value = lx.value()?;
        if map.insert(key.clone(), value).is_some() {
            return Err(lx.err(format!("duplicate fixed param '{key}'")));
        }
        lx.expect(&Tok::Comma)?;
    }
}

fn parse_tolerance_map(lx: &mut Lexer<'_>) -> Result<BTreeMap<String, ToleranceSpec>, ParseError> {
    lx.expect(&Tok::LBrace)?;
    let mut map = BTreeMap::new();
    loop {
        if lx.peek()? == Tok::RBrace {
            lx.expect(&Tok::RBrace)?;
            return Ok(map);
        }
        let key = lx.string_lit()?;
        lx.expect(&Tok::Colon)?;
        match lx.ident()?.as_str() {
            "Tol" => {}
            other => return Err(lx.err(format!("expected 'Tol', found '{other}'"))),
        }
        lx.expect(&Tok::LParen)?;
        lx.expect_field("min")?;
        let min = lx.opt_f64()?;
        lx.expect(&Tok::Comma)?;
        lx.expect_field("max")?;
        let max = lx.opt_f64()?;
        lx.expect(&Tok::Comma)?;
        lx.expect_field("abs")?;
        let abs = lx.opt_f64()?;
        lx.expect(&Tok::Comma)?;
        lx.expect_field("rel")?;
        let rel = lx.opt_f64()?;
        lx.expect(&Tok::RParen)?;
        if map
            .insert(key.clone(), ToleranceSpec { min, max, abs, rel })
            .is_some()
        {
            return Err(lx.err(format!("duplicate tolerance '{key}'")));
        }
        lx.expect(&Tok::Comma)?;
    }
}

/// Parses one plan from the on-disk format. Top-level fields must appear
/// in the canonical [`to_ron`] order (plans are short and machine-diffed;
/// a fixed order keeps the parser and review diffs simple).
pub fn parse(text: &str) -> Result<AblationPlan, ParseError> {
    let mut lx = Lexer::new(text);
    match lx.next()? {
        Tok::Ident(id) if id == "Ablation" => {}
        other => return Err(lx.err(format!("expected 'Ablation', found {other:?}"))),
    }
    lx.expect(&Tok::LParen)?;
    lx.expect_field("name")?;
    let name = lx.string_lit()?;
    lx.expect(&Tok::Comma)?;
    lx.expect_field("substrate")?;
    let substrate = match lx.ident()?.as_str() {
        "Conformance" => Substrate::Conformance,
        "Quantum" => Substrate::Quantum,
        "Sweep" => Substrate::Sweep,
        "RoundEngine" => Substrate::RoundEngine,
        "ServeCache" => Substrate::ServeCache,
        other => return Err(lx.err(format!("unknown substrate '{other}'"))),
    };
    lx.expect(&Tok::Comma)?;
    lx.expect_field("mode")?;
    let mode = match lx.ident()?.as_str() {
        "Grid" => AblationMode::Grid,
        "Lhs" => AblationMode::Lhs,
        other => return Err(lx.err(format!("unknown mode '{other}'"))),
    };
    lx.expect(&Tok::Comma)?;
    lx.expect_field("samples")?;
    let samples = lx.opt_usize()?;
    lx.expect(&Tok::Comma)?;
    lx.expect_field("factors")?;
    let factors = parse_factor_map(&mut lx)?;
    lx.expect(&Tok::Comma)?;
    lx.expect_field("fixed")?;
    let fixed = parse_fixed_map(&mut lx)?;
    lx.expect(&Tok::Comma)?;
    lx.expect_field("tolerances")?;
    let tolerances = parse_tolerance_map(&mut lx)?;
    lx.expect(&Tok::Comma)?;
    lx.expect(&Tok::RParen)?;
    match lx.next()? {
        Tok::Eof => Ok(AblationPlan {
            name,
            substrate,
            mode,
            samples,
            factors,
            fixed,
            tolerances,
        }),
        other => Err(lx.err(format!("trailing input: {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> AblationPlan {
        let mut factors = BTreeMap::new();
        factors.insert(
            "eps".to_string(),
            vec![Value::Number(0.08), Value::Number(0.45)],
        );
        factors.insert(
            "family".to_string(),
            vec![
                Value::String("grid".to_string()),
                Value::String("cluster_ring".to_string()),
            ],
        );
        let mut fixed = BTreeMap::new();
        fixed.insert("n".to_string(), Value::Number(18.0));
        fixed.insert("quoted \"name\"".to_string(), Value::Bool(true));
        let mut tolerances = BTreeMap::new();
        tolerances.insert(
            "ratio".to_string(),
            ToleranceSpec {
                min: Some(0.5),
                max: Some(3.0),
                abs: Some(1e-6),
                rel: None,
            },
        );
        AblationPlan {
            name: "unit-test".to_string(),
            substrate: Substrate::Quantum,
            mode: AblationMode::Lhs,
            samples: Some(4),
            factors,
            fixed,
            tolerances,
        }
    }

    #[test]
    fn roundtrip_sample_plan() {
        let plan = sample_plan();
        let text = to_ron(&plan);
        assert_eq!(parse(&text).unwrap(), plan, "{text}");
    }

    #[test]
    fn roundtrip_empty_maps() {
        let plan = AblationPlan {
            name: String::new(),
            substrate: Substrate::Sweep,
            mode: AblationMode::Grid,
            samples: None,
            factors: BTreeMap::new(),
            fixed: BTreeMap::new(),
            tolerances: BTreeMap::new(),
        };
        assert_eq!(parse(&to_ron(&plan)).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("Ablation(").is_err());
        assert!(parse("Scenario(seed: 1)").is_err());
        let good = to_ron(&sample_plan());
        assert!(parse(&format!("{good} trailing")).is_err());
        assert!(parse(&good.replace("Quantum", "Banana")).is_err());
    }

    #[test]
    fn parse_reports_offsets() {
        let err = parse("Ablation(name: nope,").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn negative_numbers_and_comments() {
        let text = to_ron(&sample_plan())
            .replace("0.08", "-0.08")
            .replace("Ablation(", "// leading comment\nAblation(");
        let plan = parse(&text).unwrap();
        assert_eq!(plan.factors["eps"][0], Value::Number(-0.08));
    }

    #[test]
    fn plan_hash_tracks_content() {
        let a = sample_plan();
        let mut b = a.clone();
        assert_eq!(plan_hash(&a), plan_hash(&b));
        b.fixed.insert("extra".to_string(), Value::Number(1.0));
        assert_ne!(plan_hash(&a), plan_hash(&b));
    }

    #[test]
    fn tolerance_semantics() {
        let tol = ToleranceSpec {
            min: Some(1.0),
            max: Some(2.0),
            abs: Some(0.1),
            rel: None,
        };
        assert!(tol.evaluate(0.95).is_ok());
        assert!(tol.evaluate(2.05).is_ok());
        assert!(tol.evaluate(0.85).is_err());
        assert!(tol.evaluate(2.15).is_err());
        assert!(tol.evaluate(f64::NAN).is_err());
        let rel = ToleranceSpec {
            max: Some(100.0),
            rel: Some(0.1),
            ..ToleranceSpec::default()
        };
        assert!(rel.evaluate(109.0).is_ok());
        assert!(rel.evaluate(115.0).is_err());
    }
}
