//! Plan → job expansion: full cartesian grids, or seeded SplitMix64
//! Latin-hypercube samples.
//!
//! Expansion is a pure function of `(plan, root_seed)`: job order, job
//! ids, parameter assignments, and per-job seeds are all deterministic,
//! which is what makes the downstream runbook byte-identical across
//! reruns and lane counts.

use crate::plan::{AblationMode, AblationPlan};
use serde_json::Value;
use std::collections::BTreeMap;
use wdr_metrics::trajectory::fnv1a_64;

/// Weyl increment of the SplitMix64 stream (same constant the scenario
/// generator uses).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// One step of the SplitMix64 generator (Steele–Lea–Flood; the same
/// finalizer `conformance::scenario` uses for seed-derived streams).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One expanded job: a full parameter assignment plus a derived seed.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Position in expansion order (0-based, contiguous).
    pub index: usize,
    /// Stable id (`job-0007`), fixed-width so lexicographic order equals
    /// expansion order.
    pub id: String,
    /// Derived per-job seed (SplitMix64 of the root seed and index).
    pub seed: u64,
    /// Fixed params plus this job's factor levels.
    pub params: BTreeMap<String, Value>,
}

fn job_seed(root_seed: u64, index: usize) -> u64 {
    let mut state = root_seed.wrapping_add((index as u64).wrapping_mul(GOLDEN));
    splitmix64(&mut state)
}

fn make_job(
    plan: &AblationPlan,
    root_seed: u64,
    index: usize,
    assignment: &[(String, Value)],
) -> Job {
    let mut params = plan.fixed.clone();
    for (name, value) in assignment {
        params.insert(name.clone(), value.clone());
    }
    Job {
        index,
        id: format!("job-{index:04}"),
        seed: job_seed(root_seed, index),
        params,
    }
}

/// Seeded Fisher–Yates permutation of `0..len`.
fn permutation(len: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..len).collect();
    let mut state = seed;
    for i in (1..len).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Expands a plan into its job list.
///
/// * `Grid` — the full cartesian product of every factor's levels, in
///   sorted factor-name order with the **last** factor varying fastest.
/// * `Lhs` — exactly `samples` jobs; each factor's `samples` strata are
///   visited once across the sample (a seeded Latin hypercube), and a
///   stratum maps onto level `⌊stratum · levels / samples⌋`.
///
/// # Errors
///
/// Rejects factors with no levels, factor names that shadow fixed
/// params, and `Lhs` plans without a (positive) `samples` count.
pub fn expand(plan: &AblationPlan, root_seed: u64) -> Result<Vec<Job>, String> {
    for (name, levels) in &plan.factors {
        if levels.is_empty() {
            return Err(format!("factor '{name}' has no levels"));
        }
        if plan.fixed.contains_key(name) {
            return Err(format!("factor '{name}' shadows a fixed param"));
        }
    }
    let names: Vec<&String> = plan.factors.keys().collect();
    match plan.mode {
        AblationMode::Grid => {
            let counts: Vec<usize> = names.iter().map(|n| plan.factors[*n].len()).collect();
            let total: usize = counts.iter().product();
            let mut jobs = Vec::with_capacity(total);
            for index in 0..total {
                let mut rem = index;
                let mut assignment = vec![(String::new(), Value::Null); names.len()];
                for k in (0..names.len()).rev() {
                    let level = rem % counts[k];
                    rem /= counts[k];
                    assignment[k] = (names[k].clone(), plan.factors[names[k]][level].clone());
                }
                jobs.push(make_job(plan, root_seed, index, &assignment));
            }
            Ok(jobs)
        }
        AblationMode::Lhs => {
            let samples = plan
                .samples
                .ok_or("Lhs mode requires samples: Some(k)".to_string())?;
            if samples == 0 {
                return Err("Lhs mode requires samples > 0".to_string());
            }
            // One stratum permutation per factor, seeded independently of
            // factor insertion order (name-hashed), so adding a factor
            // never reshuffles the others.
            let perms: Vec<Vec<usize>> = names
                .iter()
                .map(|n| permutation(samples, root_seed ^ fnv1a_64(n.as_bytes())))
                .collect();
            let mut jobs = Vec::with_capacity(samples);
            for index in 0..samples {
                let assignment: Vec<(String, Value)> = names
                    .iter()
                    .zip(&perms)
                    .map(|(name, perm)| {
                        let levels = &plan.factors[*name];
                        let level = perm[index] * levels.len() / samples;
                        ((*name).clone(), levels[level.min(levels.len() - 1)].clone())
                    })
                    .collect();
                jobs.push(make_job(plan, root_seed, index, &assignment));
            }
            Ok(jobs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Substrate;

    fn base_plan(mode: AblationMode, samples: Option<usize>) -> AblationPlan {
        let mut factors = BTreeMap::new();
        factors.insert(
            "a".to_string(),
            vec![Value::Number(1.0), Value::Number(2.0)],
        );
        factors.insert(
            "b".to_string(),
            vec![
                Value::String("x".into()),
                Value::String("y".into()),
                Value::String("z".into()),
            ],
        );
        let mut fixed = BTreeMap::new();
        fixed.insert("n".to_string(), Value::Number(8.0));
        AblationPlan {
            name: "expand-test".into(),
            substrate: Substrate::Sweep,
            mode,
            samples,
            factors,
            fixed,
            tolerances: BTreeMap::new(),
        }
    }

    #[test]
    fn grid_is_full_cartesian_product() {
        let jobs = expand(&base_plan(AblationMode::Grid, None), 7).unwrap();
        assert_eq!(jobs.len(), 6);
        // Last factor (b) varies fastest.
        assert_eq!(jobs[0].params["a"], Value::Number(1.0));
        assert_eq!(jobs[0].params["b"], Value::String("x".into()));
        assert_eq!(jobs[1].params["b"], Value::String("y".into()));
        assert_eq!(jobs[3].params["a"], Value::Number(2.0));
        // Every job carries the fixed params and a unique seed.
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 6);
        assert!(jobs.iter().all(|j| j.params["n"] == Value::Number(8.0)));
        assert_eq!(jobs[5].id, "job-0005");
    }

    #[test]
    fn lhs_honors_samples_and_covers_strata() {
        for samples in 1..=9 {
            let jobs = expand(&base_plan(AblationMode::Lhs, Some(samples)), 3).unwrap();
            assert_eq!(jobs.len(), samples);
            // Each factor's level sequence is a stratified cover: every
            // level appears ⌊samples/levels⌋ or ⌈samples/levels⌉ times.
            for (name, levels) in &base_plan(AblationMode::Lhs, Some(samples)).factors {
                let mut counts = vec![0usize; levels.len()];
                for job in &jobs {
                    let pos = levels.iter().position(|l| l == &job.params[name]).unwrap();
                    counts[pos] += 1;
                }
                let lo = samples / levels.len();
                let hi = samples.div_ceil(levels.len());
                assert!(
                    counts.iter().all(|&c| c >= lo && c <= hi),
                    "samples {samples}, factor {name}: {counts:?}"
                );
            }
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let plan = base_plan(AblationMode::Lhs, Some(5));
        assert_eq!(expand(&plan, 11).unwrap(), expand(&plan, 11).unwrap());
        assert_ne!(
            expand(&plan, 11).unwrap()[0].seed,
            expand(&plan, 12).unwrap()[0].seed
        );
    }

    #[test]
    fn expansion_rejects_bad_plans() {
        let mut plan = base_plan(AblationMode::Grid, None);
        plan.factors.insert("empty".into(), Vec::new());
        assert!(expand(&plan, 1).unwrap_err().contains("no levels"));

        let mut plan = base_plan(AblationMode::Grid, None);
        plan.factors.insert("n".into(), vec![Value::Number(1.0)]);
        assert!(expand(&plan, 1).unwrap_err().contains("shadows"));

        let plan = base_plan(AblationMode::Lhs, None);
        assert!(expand(&plan, 1).unwrap_err().contains("samples"));
    }
}
