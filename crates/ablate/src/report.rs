//! The [`RunbookReport`]: full provenance, per-job metrics and
//! fingerprints, tolerance verdicts — emitted as *canonical JSON* whose
//! bytes are identical across reruns and lane counts.
//!
//! Canonicalization rules (the contract the determinism proptests and the
//! golden fixture pin):
//!
//! * object keys are emitted in sorted (alphabetical) order at every
//!   nesting level;
//! * no whitespace;
//! * strings use `serde::write_json_string` escaping;
//! * numbers use `wdr_metrics::snapshot::write_f64` — shortest-roundtrip
//!   for finite values, `null` for non-finite;
//! * nothing volatile enters the report: [`RunbookMeta`] carries commit,
//!   host threads, and seeds but — unlike `wdr_metrics::RunMeta` — **no
//!   wall-clock timestamp**, and job outcomes carry no timings.

use crate::exec::JobOutcome;
use crate::expand::Job;
use crate::plan::{plan_hash, AblationPlan};
use serde::write_json_string;
use serde_json::Value;
use std::collections::BTreeMap;
use wdr_metrics::provenance;
use wdr_metrics::snapshot::write_f64;
use wdr_metrics::trajectory::fnv1a_hex;

/// Provenance header of a runbook. Deliberately timestamp-free so rerun
/// bytes are identical (the schema version covers format evolution).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunbookMeta {
    /// Report format version.
    pub schema_version: u32,
    /// The plan's `name` field.
    pub plan_name: String,
    /// FNV-1a of the plan's canonical RON bytes ([`plan_hash`]).
    pub plan_hash: String,
    /// Git commit (`WDR_COMMIT` env → `git rev-parse` → `"unknown"`).
    pub commit: String,
    /// Available parallelism on the recording host.
    pub host_threads: usize,
    /// Root seeds the run used (sorted, deduplicated).
    pub seeds: Vec<u64>,
}

impl RunbookMeta {
    /// Captures provenance for a run of `plan` under `root_seed`.
    pub fn capture(plan: &AblationPlan, root_seed: u64) -> RunbookMeta {
        RunbookMeta {
            schema_version: 1,
            plan_name: plan.name.clone(),
            plan_hash: plan_hash(plan),
            commit: provenance::git_commit(),
            host_threads: provenance::host_threads(),
            seeds: vec![root_seed],
        }
    }
}

/// One job's row in the runbook.
#[derive(Clone, Debug, PartialEq)]
pub struct JobReport {
    /// Expansion index.
    pub index: usize,
    /// Stable job id (`job-0007`).
    pub id: String,
    /// The job's full parameter assignment.
    pub params: BTreeMap<String, Value>,
    /// Measured metrics (includes the synthetic `failed` ∈ {0, 1}).
    pub metrics: BTreeMap<String, f64>,
    /// Substrate failure message, if any.
    pub error: Option<String>,
    /// FNV-1a of this job's canonical fragment (id, index, params,
    /// metrics, error — not the fingerprint itself).
    pub fingerprint: String,
}

/// One tolerance evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    /// The job evaluated (`"(none)"` for plan-level failures such as a
    /// metric no job produced).
    pub job_id: String,
    /// The metric the tolerance names.
    pub metric: String,
    /// The measured value (0 when the metric is missing).
    pub value: f64,
    /// Whether the tolerance held.
    pub ok: bool,
    /// Human-readable evidence; names the metric on violation.
    pub detail: String,
}

/// The full runbook: provenance, jobs, verdicts, and the embedded
/// registry snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct RunbookReport {
    /// Provenance header.
    pub meta: RunbookMeta,
    /// Substrate name (`Substrate::name`).
    pub substrate: String,
    /// Mode name (`AblationMode::name`).
    pub mode: String,
    /// One row per job, expansion order.
    pub jobs: Vec<JobReport>,
    /// Tolerance verdicts: per `(metric, job)` in tolerance-name order.
    pub verdicts: Vec<Verdict>,
    /// Embedded `wdr-metrics` snapshot as sorted `(name, value)` pairs.
    pub metrics: Vec<(String, f64)>,
    /// `true` when every verdict holds.
    pub passed: bool,
}

fn write_value_json(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => write_f64(*x, out),
        Value::String(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_json(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_value_json(v, out);
            }
            out.push('}');
        }
    }
}

/// The job fragment *without* the fingerprint field — what the
/// fingerprint is computed over.
fn write_job_core(job: &JobReport, out: &mut String) {
    out.push_str("\"error\":");
    match &job.error {
        None => out.push_str("null"),
        Some(e) => write_json_string(e, out),
    }
    out.push_str(",\"id\":");
    write_json_string(&job.id, out);
    out.push_str(&format!(",\"index\":{}", job.index));
    out.push_str(",\"metrics\":{");
    for (i, (k, v)) in job.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(k, out);
        out.push(':');
        write_f64(*v, out);
    }
    out.push_str("},\"params\":{");
    for (i, (k, v)) in job.params.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(k, out);
        out.push(':');
        write_value_json(v, out);
    }
    out.push('}');
}

/// FNV-1a fingerprint of a job row (over its canonical fragment).
pub fn job_fingerprint(job: &JobReport) -> String {
    let mut s = String::new();
    write_job_core(job, &mut s);
    fnv1a_hex(s.as_bytes())
}

/// Builds the job rows from expansion + execution results (stamping each
/// row's artifact fingerprint).
pub fn job_reports(jobs: &[Job], outcomes: &[JobOutcome]) -> Vec<JobReport> {
    jobs.iter()
        .zip(outcomes)
        .map(|(job, out)| {
            debug_assert_eq!(job.index, out.index);
            let mut row = JobReport {
                index: job.index,
                id: job.id.clone(),
                params: job.params.clone(),
                metrics: out.metrics.clone(),
                error: out.error.clone(),
                fingerprint: String::new(),
            };
            row.fingerprint = job_fingerprint(&row);
            row
        })
        .collect()
}

/// Evaluates every plan tolerance against every job, in tolerance-name
/// then job order. A metric no job produced yields a single failing
/// verdict naming it. Returns the verdicts and the overall pass flag.
pub fn check_tolerances(plan: &AblationPlan, jobs: &[JobReport]) -> (Vec<Verdict>, bool) {
    let mut verdicts = Vec::new();
    let mut passed = true;
    for (metric, tol) in &plan.tolerances {
        let mut produced = false;
        for job in jobs {
            let Some(&value) = job.metrics.get(metric) else {
                continue;
            };
            produced = true;
            match tol.evaluate(value) {
                Ok(()) => verdicts.push(Verdict {
                    job_id: job.id.clone(),
                    metric: metric.clone(),
                    value,
                    ok: true,
                    detail: "within tolerance".to_string(),
                }),
                Err(why) => {
                    passed = false;
                    verdicts.push(Verdict {
                        job_id: job.id.clone(),
                        metric: metric.clone(),
                        value,
                        ok: false,
                        detail: format!("metric '{metric}': {why}"),
                    });
                }
            }
        }
        if !produced {
            passed = false;
            verdicts.push(Verdict {
                job_id: "(none)".to_string(),
                metric: metric.clone(),
                value: 0.0,
                ok: false,
                detail: format!("metric '{metric}' was not produced by any job"),
            });
        }
    }
    (verdicts, passed)
}

/// Serializes the report into its canonical JSON form (see the module
/// docs for the exact rules). Infallible in practice; the `Result`
/// mirrors the runbook-producer convention so call sites stay uniform if
/// serialization ever gains failure modes.
pub fn to_canonical_json_bytes(report: &RunbookReport) -> Result<Vec<u8>, String> {
    let mut out = String::new();
    out.push_str("{\"jobs\":[");
    for (i, job) in report.jobs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        write_job_core(job, &mut out);
        out.push_str(",\"fingerprint\":");
        write_json_string(&job.fingerprint, &mut out);
        out.push('}');
    }
    out.push_str("],\"meta\":{");
    let meta = &report.meta;
    out.push_str("\"commit\":");
    write_json_string(&meta.commit, &mut out);
    out.push_str(&format!(",\"host_threads\":{}", meta.host_threads));
    out.push_str(",\"plan_hash\":");
    write_json_string(&meta.plan_hash, &mut out);
    out.push_str(",\"plan_name\":");
    write_json_string(&meta.plan_name, &mut out);
    out.push_str(&format!(",\"schema_version\":{}", meta.schema_version));
    out.push_str(",\"seeds\":[");
    for (i, seed) in meta.seeds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&seed.to_string());
    }
    out.push_str("]},\"metrics\":[");
    for (i, (name, value)) in report.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        write_json_string(name, &mut out);
        out.push(',');
        write_f64(*value, &mut out);
        out.push(']');
    }
    out.push_str("],\"mode\":");
    write_json_string(&report.mode, &mut out);
    out.push_str(&format!(
        ",\"passed\":{}",
        if report.passed { "true" } else { "false" }
    ));
    out.push_str(",\"substrate\":");
    write_json_string(&report.substrate, &mut out);
    out.push_str(",\"verdicts\":[");
    for (i, v) in report.verdicts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"detail\":");
        write_json_string(&v.detail, &mut out);
        out.push_str(",\"job_id\":");
        write_json_string(&v.job_id, &mut out);
        out.push_str(",\"metric\":");
        write_json_string(&v.metric, &mut out);
        out.push_str(&format!(",\"ok\":{}", if v.ok { "true" } else { "false" }));
        out.push_str(",\"value\":");
        write_f64(v.value, &mut out);
        out.push('}');
    }
    out.push_str("]}");
    Ok(out.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ToleranceSpec;

    fn sample_report() -> RunbookReport {
        let mut params = BTreeMap::new();
        params.insert("n".to_string(), Value::Number(8.0));
        params.insert("family".to_string(), Value::String("path".into()));
        let mut metrics = BTreeMap::new();
        metrics.insert("diameter".to_string(), 7.0);
        metrics.insert("failed".to_string(), 0.0);
        let mut job = JobReport {
            index: 0,
            id: "job-0000".to_string(),
            params,
            metrics,
            error: None,
            fingerprint: String::new(),
        };
        job.fingerprint = job_fingerprint(&job);
        RunbookReport {
            meta: RunbookMeta {
                schema_version: 1,
                plan_name: "report-test".to_string(),
                plan_hash: "deadbeefdeadbeef".to_string(),
                commit: "testcommit".to_string(),
                host_threads: 4,
                seeds: vec![7],
            },
            substrate: "Sweep".to_string(),
            mode: "Grid".to_string(),
            jobs: vec![job],
            verdicts: vec![Verdict {
                job_id: "job-0000".to_string(),
                metric: "diameter".to_string(),
                value: 7.0,
                ok: true,
                detail: "within tolerance".to_string(),
            }],
            metrics: vec![("ablate.jobs".to_string(), 1.0)],
            passed: true,
        }
    }

    #[test]
    fn canonical_json_is_stable_and_parses() {
        let report = sample_report();
        let a = to_canonical_json_bytes(&report).unwrap();
        let b = to_canonical_json_bytes(&report).unwrap();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        // No structural whitespace; sorted top-level keys.
        assert!(text.starts_with("{\"jobs\":[{"));
        assert!(!text.contains('\n') && !text.contains(": ") && !text.contains(", "));
        let jobs_pos = text.find("\"jobs\"").unwrap();
        let meta_pos = text.find("\"meta\"").unwrap();
        let verdicts_pos = text.find("\"verdicts\"").unwrap();
        assert!(jobs_pos < meta_pos && meta_pos < verdicts_pos);
        let v = serde_json::from_str(&text).expect("canonical JSON parses");
        assert_eq!(
            v.get("substrate").and_then(Value::as_str),
            Some("Sweep"),
            "{text}"
        );
        assert_eq!(v.get("passed").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn fingerprint_tracks_job_content() {
        let report = sample_report();
        let mut job = report.jobs[0].clone();
        let original = job.fingerprint.clone();
        assert_eq!(job_fingerprint(&job), original);
        job.metrics.insert("diameter".to_string(), 8.0);
        assert_ne!(job_fingerprint(&job), original);
    }

    #[test]
    fn missing_metric_fails_with_named_verdict() {
        let report = sample_report();
        let mut plan_tolerances = BTreeMap::new();
        plan_tolerances.insert("nonexistent".to_string(), ToleranceSpec::default());
        let plan = AblationPlan {
            name: "t".into(),
            substrate: crate::plan::Substrate::Sweep,
            mode: crate::plan::AblationMode::Grid,
            samples: None,
            factors: BTreeMap::new(),
            fixed: BTreeMap::new(),
            tolerances: plan_tolerances,
        };
        let (verdicts, passed) = check_tolerances(&plan, &report.jobs);
        assert!(!passed);
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].detail.contains("nonexistent"));
    }

    #[test]
    fn violated_tolerance_names_metric() {
        let report = sample_report();
        let mut tolerances = BTreeMap::new();
        tolerances.insert(
            "diameter".to_string(),
            ToleranceSpec {
                max: Some(5.0),
                ..ToleranceSpec::default()
            },
        );
        let plan = AblationPlan {
            name: "t".into(),
            substrate: crate::plan::Substrate::Sweep,
            mode: crate::plan::AblationMode::Grid,
            samples: None,
            factors: BTreeMap::new(),
            fixed: BTreeMap::new(),
            tolerances,
        };
        let (verdicts, passed) = check_tolerances(&plan, &report.jobs);
        assert!(!passed);
        let bad = verdicts.iter().find(|v| !v.ok).unwrap();
        assert!(bad.detail.contains("'diameter'"));
        assert_eq!(bad.value, 7.0);
    }
}
