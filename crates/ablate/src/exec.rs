//! Job execution: maps each expanded [`Job`] onto one of the existing
//! substrates and fans graph-sharing groups across batch lanes.
//!
//! The lane discipline replicates `wdr_conformance::batch`: jobs are
//! grouped by derived *graph identity* (so group-mates amortize one
//! [`SharedSetup`] build, including its cached
//! `congest_graph::context::GraphContext` sweeps), groups are spawned across a
//! dedicated rayon pool with one disjoint result bucket per group, and
//! results are reduced back into job-index order. Only deterministic
//! quantities enter the outcome (no timings), so the reduced result — and
//! therefore the runbook bytes — is identical across lane counts,
//! including the sequential `lanes = None` path.

use crate::expand::{splitmix64, Job};
use crate::plan::Substrate;
use congest_sim::primitives::{self, Aggregate};
use congest_wdr::algorithm::{quantum_weighted, Objective};
use congest_wdr::params::WdrParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::Value;
use std::collections::BTreeMap;
use wdr_conformance::oracle::SharedSetup;
use wdr_conformance::runner::{self, SuiteOptions};
use wdr_conformance::scenario::{Family, FaultSpec, ParMode, ScenarioSpec, Workload};
use wdr_serve::cache::{Admission, Fulfillment, ResultCache};
use wdr_serve::engine::{cache_key, QueryEngine};
use wdr_serve::metrics::ServeMetrics;
use wdr_serve::protocol::Algorithm;

/// The deterministic result of one job: a flat metric map, or an error.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    /// The job's expansion index.
    pub index: usize,
    /// Measured metrics (every job also reports `failed` ∈ {0, 1} so
    /// tolerances can bound error counts).
    pub metrics: BTreeMap<String, f64>,
    /// The failure message, when the substrate returned an error.
    pub error: Option<String>,
}

fn get_f64(job: &Job, key: &str, default: f64) -> Result<f64, String> {
    match job.params.get(key) {
        None => Ok(default),
        Some(Value::Number(v)) => Ok(*v),
        Some(other) => Err(format!("param '{key}' must be a number, got {other:?}")),
    }
}

fn get_usize(job: &Job, key: &str, default: usize) -> Result<usize, String> {
    let v = get_f64(job, key, default as f64)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("param '{key}' must be a non-negative integer"));
    }
    Ok(v as usize)
}

fn get_str<'a>(job: &'a Job, key: &str, default: &'a str) -> Result<&'a str, String> {
    match job.params.get(key) {
        None => Ok(default),
        Some(Value::String(s)) => Ok(s),
        Some(other) => Err(format!("param '{key}' must be a string, got {other:?}")),
    }
}

fn family_from(job: &Job) -> Result<Family, String> {
    Ok(match get_str(job, "family", "grid")? {
        "path" => Family::Path,
        "cycle" => Family::Cycle,
        "star" => Family::Star,
        "grid" => Family::Grid,
        "binary_tree" => Family::BinaryTree,
        "erdos_renyi" => Family::ErdosRenyi {
            p: get_f64(job, "er_p", 0.3)?,
        },
        "cluster_ring" => Family::ClusterRing {
            hubs: get_usize(job, "hubs", 4)?,
        },
        other => return Err(format!("unknown family '{other}'")),
    })
}

/// The scenario a graph-substrate job (Quantum / Sweep / RoundEngine)
/// describes. The *graph* half (family, n, max_weight, seed) is shared
/// across group-mates; faults and workload vary per job.
fn scenario_from(job: &Job, workload: Workload) -> Result<ScenarioSpec, String> {
    let fault_rate = get_f64(job, "fault_rate", 0.0)?;
    let faults = if fault_rate > 0.0 {
        FaultSpec::Drops { rate: fault_rate }
    } else {
        FaultSpec::NoFaults
    };
    Ok(ScenarioSpec {
        // The spec seed drives graph construction (for seeded families)
        // and the fault plan — NOT the per-job RNG, which comes from
        // `job.seed` — so group-mates keep byte-identical graphs.
        seed: get_usize(job, "graph_seed", 5)? as u64,
        family: family_from(job)?,
        n: get_usize(job, "n", 16)?,
        max_weight: get_usize(job, "max_weight", 8)? as u64,
        faults,
        parallelism: ParMode::Sequential,
        workload,
    }
    .normalized())
}

/// Group key: jobs with equal keys build byte-identical graphs and share
/// one setup. Substrates without shared setup — and jobs whose graph
/// params don't even parse (they must still reach `run_group` to fail
/// individually) — get per-job groups.
fn group_key(substrate: Substrate, job: &Job) -> String {
    match substrate {
        Substrate::Quantum | Substrate::Sweep | Substrate::RoundEngine => {
            match scenario_from(job, Workload::BaselineExact) {
                Ok(spec) => wdr_conformance::batch::graph_key(&spec),
                Err(_) => job.id.clone(),
            }
        }
        Substrate::Conformance | Substrate::ServeCache => job.id.clone(),
    }
}

fn objective_from(job: &Job) -> Result<(Objective, Workload), String> {
    match get_str(job, "objective", "diameter")? {
        "diameter" => Ok((Objective::Diameter, Workload::QuantumDiameter)),
        "radius" => Ok((Objective::Radius, Workload::QuantumRadius)),
        other => Err(format!("unknown objective '{other}' (diameter|radius)")),
    }
}

/// One quantum weighted-diameter/radius run with the oracle's small-graph
/// calibration, but the accuracy ε taken from the job params instead of
/// the suite's `o1_tolerance(n)` schedule.
fn run_quantum(job: &Job, setup: &SharedSetup) -> Result<BTreeMap<String, f64>, String> {
    let (objective, workload) = objective_from(job)?;
    let spec = scenario_from(job, workload)?;
    let g = setup.graph();
    let eps = get_f64(job, "eps", 0.25)?;
    if !(eps > 0.0 && eps <= 1.0) {
        return Err(format!("eps {eps} outside (0, 1]"));
    }
    let mut params = WdrParams::for_benchmarks(g.n(), setup.d(), eps);
    // The workspace-wide small-graph calibration (see conformance
    // `oracle::evaluate_quantum`): a generous hop budget and Θ(n)-sized
    // sets keep the Lemma 3.4 marked mass non-degenerate at these sizes.
    params.ell = g.n();
    params.r = (g.n() as f64 * 0.35).max(2.0);
    let cfg = spec.build_config(g);
    let mut rng = ChaCha8Rng::seed_from_u64(job.seed);
    let report = quantum_weighted(g, 0, objective, &params, &cfg, &mut rng)
        .map_err(|e| format!("quantum run failed: {e}"))?;
    let cap = (1.0 + eps) * (1.0 + eps) * report.exact + 1e-6;
    let floor = report.exact - 1e-6;
    let (hard_ok, soft_ok) = match objective {
        Objective::Diameter => (report.estimate <= cap, report.estimate >= floor),
        Objective::Radius => (report.estimate >= floor, report.estimate <= cap),
    };
    let mut m = BTreeMap::new();
    m.insert("estimate".to_string(), report.estimate);
    m.insert("exact".to_string(), report.exact);
    m.insert(
        "ratio".to_string(),
        if report.exact > 0.0 {
            report.estimate / report.exact
        } else {
            1.0
        },
    );
    m.insert("budgeted_rounds".to_string(), report.budgeted_rounds as f64);
    m.insert("hard_ok".to_string(), f64::from(u8::from(hard_ok)));
    m.insert("soft_ok".to_string(), f64::from(u8::from(soft_ok)));
    m.insert(
        "guaranteed".to_string(),
        f64::from(u8::from(report.confidence.is_guaranteed())),
    );
    Ok(m)
}

/// Pruned sweep extremes on the job's graph (cached in the shared setup).
fn run_sweep(_job: &Job, setup: &SharedSetup) -> Result<BTreeMap<String, f64>, String> {
    let extremes = setup.extremes();
    let g = setup.graph();
    let mut m = BTreeMap::new();
    m.insert("diameter".to_string(), extremes.diameter.as_f64());
    m.insert("radius".to_string(), extremes.radius.as_f64());
    m.insert("sweeps".to_string(), extremes.sweeps as f64);
    m.insert(
        "sweep_fraction".to_string(),
        extremes.sweeps as f64 / g.n() as f64,
    );
    m.insert("n".to_string(), g.n() as f64);
    m.insert("m".to_string(), g.m() as f64);
    m.insert(
        "connected".to_string(),
        f64::from(u8::from(extremes.is_connected())),
    );
    Ok(m)
}

/// E8-style round-engine run: a BFS spanning tree on the lossless
/// network, then a converge-cast sum under the job's fault plan (the
/// conformance `evaluate_primitive` discipline — the faulted phase under
/// test is exactly the cast).
fn run_round_engine(job: &Job, setup: &SharedSetup) -> Result<BTreeMap<String, f64>, String> {
    let spec = scenario_from(job, Workload::PrimitiveAggregate)?;
    let g = setup.graph();
    let clean = congest_sim::SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(1_000_000);
    let cfg = spec.build_config(g);
    let (tree, bfs_stats) =
        primitives::bfs_tree(g, 0, &clean).map_err(|e| format!("bfs_tree failed: {e}"))?;
    let values: Vec<u128> = (0..g.n() as u128).collect();
    let (sum, cast_stats) = primitives::converge_cast(g, 0, &cfg, &tree, &values, Aggregate::Sum)
        .map_err(|e| format!("converge_cast failed: {e}"))?;
    let mut m = BTreeMap::new();
    m.insert(
        "rounds".to_string(),
        (bfs_stats.rounds + cast_stats.rounds) as f64,
    );
    m.insert(
        "messages".to_string(),
        (bfs_stats.messages + cast_stats.messages) as f64,
    );
    m.insert(
        "bits".to_string(),
        (bfs_stats.bits + cast_stats.bits) as f64,
    );
    m.insert("sum".to_string(), sum as f64);
    Ok(m)
}

/// A conformance-suite slice: the first `count` corpus scenarios through
/// `runner::run_suite` (optionally on its own inner batch lanes).
fn run_conformance(job: &Job) -> Result<BTreeMap<String, f64>, String> {
    let count = get_usize(job, "count", 16)? as u64;
    let inner_lanes = get_usize(job, "lanes", 0)?;
    let specs = runner::generate_corpus(count);
    let options = SuiteOptions {
        lanes: (inner_lanes > 0).then_some(inner_lanes),
        ..SuiteOptions::default()
    };
    let report = runner::run_suite(&specs, &options);
    let mut m = BTreeMap::new();
    m.insert("scenarios".to_string(), report.outcomes.len() as f64);
    m.insert("failures".to_string(), report.failures.len() as f64);
    m.insert("soft_rate".to_string(), report.soft_rate.unwrap_or(-1.0));
    m.insert(
        "envelope_passed".to_string(),
        f64::from(u8::from(report.envelope.passed)),
    );
    m.insert(
        "envelope_c_max".to_string(),
        report
            .envelope
            .regimes
            .iter()
            .map(|r| r.c_max)
            .fold(0.0, f64::max),
    );
    m.insert(
        "envelope_samples".to_string(),
        report.envelope.samples as f64,
    );
    Ok(m)
}

/// E10-style serve load mix: a seeded closed loop of `requests` queries
/// drawn from `distinct` algorithm variants against the in-process
/// engine + content-addressed cache.
fn run_serve_cache(job: &Job) -> Result<BTreeMap<String, f64>, String> {
    let spec = scenario_from(job, Workload::BaselineExact)?;
    let g = spec.build_graph();
    let requests = get_usize(job, "requests", 64)?;
    let distinct = get_usize(job, "distinct", 8)?.max(1);
    let capacity_kb = get_usize(job, "capacity_kb", 64)?;
    let registry = wdr_metrics::MetricsRegistry::new();
    let cache = ResultCache::new(
        capacity_kb * 1024,
        ServeMetrics::register(&registry, "serve"),
    );
    let mut engine = QueryEngine::new();
    let digest = g.digest();
    let variant = |k: usize| -> Algorithm {
        match k {
            0 => Algorithm::Diameter,
            1 => Algorithm::Radius,
            2 => Algorithm::Extremes,
            _ => Algorithm::Eccentricity {
                node: (k - 3) % g.n(),
            },
        }
    };
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut state = job.seed;
    for _ in 0..requests {
        let k = (splitmix64(&mut state) % distinct as u64) as usize;
        let algorithm = variant(k);
        let key = cache_key(digest, &algorithm, 0);
        match cache.admit(&key) {
            Admission::Hit(_) => hits += 1,
            Admission::Lead(cell) => {
                misses += 1;
                let value = engine
                    .run(&g, &algorithm)
                    .map_err(|e| format!("query failed: {e:?}"))?;
                cache.complete(&key, &cell, Fulfillment::Value(value));
            }
            // Single-threaded driver: nothing is ever left in flight.
            Admission::Follow(_) => return Err("unexpected in-flight follow".to_string()),
        }
    }
    let (entries, bytes) = cache.footprint();
    let mut m = BTreeMap::new();
    m.insert("hits".to_string(), hits as f64);
    m.insert("misses".to_string(), misses as f64);
    m.insert(
        "hit_rate".to_string(),
        if requests > 0 {
            hits as f64 / requests as f64
        } else {
            0.0
        },
    );
    m.insert("entries".to_string(), entries as f64);
    m.insert("bytes".to_string(), bytes as f64);
    Ok(m)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    let text = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    format!("substrate panicked: {text}")
}

/// Runs one job against an optional pre-built shared setup. Substrate
/// panics are contained into deterministic job errors (the conformance
/// no-panic discipline), so one bad job never kills a lane pool.
fn run_job(substrate: Substrate, job: &Job, setup: Option<&SharedSetup>) -> JobOutcome {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match substrate {
        Substrate::Quantum => setup
            .ok_or("missing shared setup".to_string())
            .and_then(|s| run_quantum(job, s)),
        Substrate::Sweep => setup
            .ok_or("missing shared setup".to_string())
            .and_then(|s| run_sweep(job, s)),
        Substrate::RoundEngine => setup
            .ok_or("missing shared setup".to_string())
            .and_then(|s| run_round_engine(job, s)),
        Substrate::Conformance => run_conformance(job),
        Substrate::ServeCache => run_serve_cache(job),
    }))
    .unwrap_or_else(|payload| Err(panic_message(payload)));
    match result {
        Ok(mut metrics) => {
            metrics.insert("failed".to_string(), 0.0);
            JobOutcome {
                index: job.index,
                metrics,
                error: None,
            }
        }
        Err(error) => {
            let mut metrics = BTreeMap::new();
            metrics.insert("failed".to_string(), 1.0);
            JobOutcome {
                index: job.index,
                metrics,
                error: Some(error),
            }
        }
    }
}

/// Runs a whole graph-identity group, building the shared setup once.
fn run_group(substrate: Substrate, jobs: &[&Job]) -> Vec<JobOutcome> {
    let setup = match substrate {
        Substrate::Quantum | Substrate::Sweep | Substrate::RoundEngine => {
            match scenario_from(jobs[0], Workload::BaselineExact) {
                Ok(spec) => Some(SharedSetup::build(&spec)),
                Err(e) => {
                    // Malformed graph params fail every group member the
                    // same way; report per job for a readable runbook.
                    return jobs
                        .iter()
                        .map(|job| {
                            let mut metrics = BTreeMap::new();
                            metrics.insert("failed".to_string(), 1.0);
                            JobOutcome {
                                index: job.index,
                                metrics,
                                error: Some(e.clone()),
                            }
                        })
                        .collect();
                }
            }
        }
        Substrate::Conformance | Substrate::ServeCache => None,
    };
    jobs.iter()
        .map(|job| run_job(substrate, job, setup.as_ref()))
        .collect()
}

/// Groups job indices by [`group_key`], groups in first-appearance order
/// (the `batch::group_by_graph` discipline).
fn group_jobs(substrate: Substrate, jobs: &[Job]) -> Vec<Vec<usize>> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: std::collections::HashMap<String, Vec<usize>> =
        std::collections::HashMap::new();
    for (idx, job) in jobs.iter().enumerate() {
        let key = group_key(substrate, job);
        let bucket = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        bucket.push(idx);
    }
    order
        .into_iter()
        .map(|key| groups.remove(&key).expect("group recorded in order"))
        .collect()
}

/// Runs every job, sequentially (`lanes = None`) or with graph-identity
/// groups fanned across a dedicated `l`-lane rayon pool. Outcomes come
/// back in job-index order and are bit-identical across both paths and
/// every lane count (nothing time- or schedule-dependent enters them).
pub fn run_jobs(
    substrate: Substrate,
    jobs: &[Job],
    lanes: Option<usize>,
) -> Result<Vec<JobOutcome>, String> {
    let groups = group_jobs(substrate, jobs);
    let mut slots: Vec<Option<JobOutcome>> = (0..jobs.len()).map(|_| None).collect();
    match lanes {
        None => {
            for group in &groups {
                let members: Vec<&Job> = group.iter().map(|&i| &jobs[i]).collect();
                for outcome in run_group(substrate, &members) {
                    let idx = outcome.index;
                    slots[idx] = Some(outcome);
                }
            }
        }
        Some(l) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(l.max(1))
                .build()
                .map_err(|e| format!("build lane pool: {e}"))?;
            let mut buckets: Vec<Vec<JobOutcome>> =
                groups.iter().map(|g| Vec::with_capacity(g.len())).collect();
            pool.install(|| {
                rayon::scope(|s| {
                    for (group, bucket) in groups.iter().zip(buckets.iter_mut()) {
                        s.spawn(move || {
                            let members: Vec<&Job> = group.iter().map(|&i| &jobs[i]).collect();
                            *bucket = run_group(substrate, &members);
                        });
                    }
                });
            });
            // Index-ordered reduction: lane scheduling never touches the
            // output order.
            for outcome in buckets.into_iter().flatten() {
                let idx = outcome.index;
                slots[idx] = Some(outcome);
            }
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.ok_or(format!("job {i} produced no outcome")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand;
    use crate::plan::{AblationMode, AblationPlan};

    fn sweep_plan() -> AblationPlan {
        let mut factors = BTreeMap::new();
        factors.insert(
            "n".to_string(),
            vec![Value::Number(8.0), Value::Number(12.0)],
        );
        factors.insert(
            "max_weight".to_string(),
            vec![Value::Number(1.0), Value::Number(7.0)],
        );
        let mut fixed = BTreeMap::new();
        fixed.insert("family".to_string(), Value::String("path".into()));
        AblationPlan {
            name: "exec-test".into(),
            substrate: Substrate::Sweep,
            mode: AblationMode::Grid,
            samples: None,
            factors,
            fixed,
            tolerances: BTreeMap::new(),
        }
    }

    #[test]
    fn sweep_jobs_measure_path_extremes() {
        let jobs = expand(&sweep_plan(), 1).unwrap();
        let outcomes = run_jobs(Substrate::Sweep, &jobs, None).unwrap();
        assert_eq!(outcomes.len(), 4);
        for (job, out) in jobs.iter().zip(&outcomes) {
            assert_eq!(out.error, None);
            let n = job.params["n"].as_f64().unwrap();
            let w = job.params["max_weight"].as_f64().unwrap();
            // A uniform-weight path has diameter (n−1)·w exactly.
            assert_eq!(out.metrics["diameter"], (n - 1.0) * w);
            assert_eq!(out.metrics["failed"], 0.0);
        }
    }

    #[test]
    fn lanes_match_sequential() {
        let jobs = expand(&sweep_plan(), 9).unwrap();
        let seq = run_jobs(Substrate::Sweep, &jobs, None).unwrap();
        for lanes in [1, 2, 4] {
            assert_eq!(run_jobs(Substrate::Sweep, &jobs, Some(lanes)).unwrap(), seq);
        }
    }

    #[test]
    fn bad_params_become_job_errors() {
        let mut plan = sweep_plan();
        plan.fixed
            .insert("family".to_string(), Value::String("banana".into()));
        let jobs = expand(&plan, 1).unwrap();
        let outcomes = run_jobs(Substrate::Sweep, &jobs, Some(2)).unwrap();
        assert!(outcomes
            .iter()
            .all(|o| o.error.as_deref().is_some_and(|e| e.contains("banana"))));
        assert!(outcomes.iter().all(|o| o.metrics["failed"] == 1.0));
    }

    #[test]
    fn round_engine_runs_clean_and_faulted() {
        let mut plan = sweep_plan();
        plan.substrate = Substrate::RoundEngine;
        plan.factors.insert(
            "fault_rate".to_string(),
            vec![Value::Number(0.0), Value::Number(0.05)],
        );
        let jobs = expand(&plan, 2).unwrap();
        let outcomes = run_jobs(Substrate::RoundEngine, &jobs, Some(2)).unwrap();
        let clean: Vec<&JobOutcome> = outcomes.iter().filter(|o| o.error.is_none()).collect();
        assert!(!clean.is_empty());
        for out in clean {
            // Sum of node ids 0..n.
            let n = out.metrics["sum"];
            assert!(n > 0.0);
            assert!(out.metrics["rounds"] > 0.0);
        }
    }

    #[test]
    fn serve_cache_hit_rate_reflects_reuse() {
        let mut fixed = BTreeMap::new();
        fixed.insert("family".to_string(), Value::String("cycle".into()));
        fixed.insert("n".to_string(), Value::Number(12.0));
        fixed.insert("requests".to_string(), Value::Number(40.0));
        fixed.insert("distinct".to_string(), Value::Number(4.0));
        let plan = AblationPlan {
            name: "serve-test".into(),
            substrate: Substrate::ServeCache,
            mode: AblationMode::Grid,
            samples: None,
            factors: BTreeMap::new(),
            fixed,
            tolerances: BTreeMap::new(),
        };
        let jobs = expand(&plan, 4).unwrap();
        let outcomes = run_jobs(Substrate::ServeCache, &jobs, None).unwrap();
        assert_eq!(outcomes.len(), 1);
        let out = &outcomes[0];
        assert_eq!(out.error, None);
        // 4 distinct queries over 40 requests: at most 4 misses.
        assert!(out.metrics["misses"] <= 4.0);
        assert!(out.metrics["hit_rate"] >= 0.9);
        assert!(out.metrics["entries"] >= 1.0);
    }
}
