//! The serving layer's zero-allocation claim, measured: once a worker's
//! [`wdr_serve::QueryEngine`] has served one warm-up pass over its
//! working set, repeated kernel execution (extremes, single and full
//! eccentricities, across Dial and binary-heap weight regimes) must not
//! touch the heap. Rendering the response JSON allocates by design and is
//! excluded — the contract covers the *compute* path a steady-state
//! worker loops on.
//!
//! This file holds exactly one `#[test]` so no sibling test can allocate
//! concurrently and pollute the counters (same harness as
//! `congest-graph/tests/kernel_alloc.rs`).

use std::alloc::System;

use congest_graph::{generators, WeightedGraph};
use wdr_metrics::heap::{heap_ops, track_current_thread, CountingAlloc};
use wdr_serve::QueryEngine;

#[global_allocator]
static GLOBAL: CountingAlloc<System> = CountingAlloc::new(System);

/// One pass of every kernel the worker loop dispatches, cycling sources.
fn exercise(engine: &mut QueryEngine, graphs: &[WeightedGraph], round: usize) -> u64 {
    let mut acc = 0u64;
    for g in graphs {
        let r = engine.extremes(g);
        acc = acc.wrapping_add(r.diameter.finite().unwrap_or(0));
        acc = acc.wrapping_add(r.radius.finite().unwrap_or(0));
        let node = round % g.n();
        acc = acc.wrapping_add(engine.eccentricity(g, node).finite().unwrap_or(0));
        let eccs = engine.eccentricities(g);
        acc = acc.wrapping_add(eccs[node].finite().unwrap_or(0));
    }
    acc
}

#[test]
fn warm_serving_kernels_do_not_allocate() {
    track_current_thread();
    let graphs = [
        generators::grid(6, 8, 3),       // small weights → Dial path
        generators::grid(5, 7, 100_000), // large weights → binary heap
        generators::cycle(40, 9),
        generators::star(33, 2),
        generators::path(48, 4096),
    ];
    assert!(graphs[1].max_weight() > congest_graph::DIAL_MAX_WEIGHT);
    let mut engine = QueryEngine::new();

    // Warm-up: grow every workspace buffer to steady-state capacity.
    let mut sink = 0u64;
    for round in 0..4 {
        sink = sink.wrapping_add(exercise(&mut engine, &graphs, round));
    }

    let before = heap_ops();
    for round in 0..16 {
        sink = sink.wrapping_add(exercise(&mut engine, &graphs, round));
    }
    let delta = heap_ops() - before;
    assert_eq!(
        delta, 0,
        "a warm serving engine must be allocation-free on the kernel path, \
         saw {delta} heap ops over 16 passes"
    );
    assert!(sink > 0, "keep the kernels observable");
}
