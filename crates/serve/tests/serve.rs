//! End-to-end tests over a real TCP daemon: malformed frames, cache
//! semantics (coalescing, eviction, bypass byte-identity), backpressure,
//! kernel correctness against the library, and scenario replay.
//!
//! Every test spawns its own server on an ephemeral port and asserts on
//! the server's own metrics registry — no cross-test shared state.

use congest_graph::{sweep, SsspWorkspace, WeightedGraph};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;
use wdr_metrics::MetricsRegistry;
use wdr_serve::protocol::read_frame;
use wdr_serve::{
    Algorithm, Client, GraphSource, Query, Request, RequestKind, ServeConfig, Server, ServerHandle,
    MAX_FRAME_BYTES,
};

fn spawn(config: ServeConfig) -> (ServerHandle, MetricsRegistry) {
    let registry = MetricsRegistry::new();
    let handle = Server::spawn(config, &registry).expect("spawn server");
    (handle, registry)
}

fn flat(registry: &MetricsRegistry) -> BTreeMap<String, f64> {
    registry.snapshot().flatten()
}

fn query(id: u64, algorithm: Algorithm, source: GraphSource, no_cache: bool) -> Request {
    Request {
        id,
        kind: RequestKind::Query(Query {
            algorithm,
            source,
            no_cache,
        }),
    }
}

fn status(v: &serde_json::Value) -> &str {
    v.get("status")
        .and_then(serde_json::Value::as_str)
        .unwrap_or("<none>")
}

fn error_kind(v: &serde_json::Value) -> &str {
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(serde_json::Value::as_str)
        .unwrap_or("<none>")
}

/// A weighted path with `n` nodes — deterministic size and cost, used
/// where tests need a predictably slow (or predictably cheap) query.
fn path_edges(n: usize, w: u64) -> Vec<(usize, usize, u64)> {
    (0..n - 1).map(|u| (u, u + 1, w)).collect()
}

#[test]
fn malformed_frames_get_typed_errors_and_do_not_kill_the_server() {
    let (handle, _registry) = spawn(ServeConfig::default());
    let addr = handle.addr().to_string();

    // (a) Truncated length prefix: two bytes, then hang up. The server
    // must shrug this connection off.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&[0u8, 1u8]).unwrap();
    }

    // (b) Oversized length prefix: a typed `frame_too_large` response,
    // then the connection closes (the stream is unframeable after it).
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&((MAX_FRAME_BYTES + 1) as u32).to_be_bytes())
            .unwrap();
        let mut buf = Vec::new();
        assert!(read_frame(&mut s, &mut buf).unwrap(), "error frame arrives");
        let v = serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(status(&v), "error");
        assert_eq!(error_kind(&v), "frame_too_large");
        assert!(
            !read_frame(&mut s, &mut buf).unwrap(),
            "server closes an unframeable connection"
        );
    }

    // (c) Well-framed garbage: a typed `invalid_json` response, and the
    // connection stays usable (the frame boundary is intact).
    {
        let mut client = Client::connect(&addr).unwrap();
        let v = client.call_raw(b"not json at all").unwrap();
        assert_eq!(status(&v), "error");
        assert_eq!(error_kind(&v), "invalid_json");
        let v = client.call_raw(&[0xff, 0xfe, 0x01]).unwrap();
        assert_eq!(error_kind(&v), "invalid_json");
        let pong = client
            .call(&Request {
                id: 9,
                kind: RequestKind::Ping,
            })
            .unwrap();
        assert_eq!(status(&pong), "ok", "connection survives bad payloads");
    }
    handle.shutdown();
}

#[test]
fn scenario_and_explicit_queries_match_local_kernels() {
    let (handle, _registry) = spawn(ServeConfig::default());
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    // Scenario source: the server must agree with a locally built spec.
    let (seed, n) = (5u64, 40usize);
    let mut spec = wdr_conformance::scenario::ScenarioSpec::from_seed(seed);
    spec.n = n;
    let spec = spec.normalized();
    let g = spec.build_graph();
    let expected = sweep::extremes(&g);
    let v = client
        .call(&query(
            1,
            Algorithm::Extremes,
            GraphSource::Scenario { seed, n: Some(n) },
            false,
        ))
        .unwrap();
    assert_eq!(status(&v), "ok");
    let result = v.get("result").expect("result");
    assert_eq!(
        result.get("diameter").and_then(serde_json::Value::as_u64),
        expected.diameter.finite()
    );
    assert_eq!(
        result.get("radius").and_then(serde_json::Value::as_u64),
        expected.radius.finite()
    );
    assert_eq!(
        result.get("sweeps").and_then(serde_json::Value::as_u64),
        Some(expected.sweeps as u64)
    );

    // Explicit source: eccentricity of one node on a shipped edge list.
    let edges = vec![(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 0, 10)];
    let local = WeightedGraph::from_edges(4, edges.iter().copied()).unwrap();
    let expected_ecc = SsspWorkspace::new().eccentricity(&local, 2);
    let v = client
        .call(&query(
            2,
            Algorithm::Eccentricity { node: 2 },
            GraphSource::Explicit {
                n: 4,
                edges: edges.clone(),
            },
            false,
        ))
        .unwrap();
    assert_eq!(status(&v), "ok");
    assert_eq!(
        v.get("result")
            .and_then(|r| r.get("eccentricity"))
            .and_then(serde_json::Value::as_u64),
        expected_ecc.finite()
    );

    // Out-of-range node: typed bad_request, not a dead worker.
    let v = client
        .call(&query(
            3,
            Algorithm::Eccentricity { node: 9 },
            GraphSource::Explicit { n: 4, edges },
            false,
        ))
        .unwrap();
    assert_eq!(status(&v), "error");
    assert_eq!(error_kind(&v), "bad_request");
    handle.shutdown();
}

#[test]
fn identical_inflight_queries_compute_once() {
    let (handle, registry) = spawn(ServeConfig {
        workers: 1,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();

    // Plug the single worker with a deterministically slow query so the
    // identical queries below overlap in flight.
    let plug = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.call(&query(
                100,
                Algorithm::Eccentricities,
                GraphSource::Explicit {
                    n: 2500,
                    edges: path_edges(2500, 700),
                },
                false,
            ))
            .unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(30));

    // Five byte-identical queries. Exactly one may lead a computation;
    // the rest must coalesce onto it (or hit the completed entry).
    let same = || {
        query(
            7,
            Algorithm::Extremes,
            GraphSource::Scenario {
                seed: 7,
                n: Some(32),
            },
            false,
        )
    };
    let joins: Vec<_> = (0..5)
        .map(|_| {
            let addr = addr.clone();
            let req = same();
            std::thread::spawn(move || Client::connect(&addr).unwrap().call(&req).unwrap())
        })
        .collect();
    for join in joins {
        let v = join.join().unwrap();
        assert_eq!(status(&v), "ok");
    }
    assert_eq!(status(&plug.join().unwrap()), "ok");

    let m = flat(&registry);
    assert_eq!(
        m["serve.cache.misses"], 2.0,
        "exactly two computations: the plug and one leader for the five"
    );
    assert_eq!(
        m["serve.cache.hits"] + m["serve.cache.coalesced"],
        4.0,
        "the other four were served without computing"
    );

    // One more identical query is now a plain hit.
    let v = Client::connect(&addr).unwrap().call(&same()).unwrap();
    assert_eq!(
        v.get("cached").and_then(serde_json::Value::as_bool),
        Some(true)
    );
    let m = flat(&registry);
    assert_eq!(m["serve.cache.misses"], 2.0, "still no recomputation");
    handle.shutdown();
}

#[test]
fn eviction_respects_the_byte_budget_end_to_end() {
    // Budget sized to hold two extremes entries (~200 bytes each), not
    // three.
    let (handle, registry) = spawn(ServeConfig {
        workers: 1,
        cache_capacity_bytes: 450,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    // Pick three seeds whose scenario graphs have distinct digests, so
    // the three queries really occupy three cache keys.
    let mut seeds = Vec::new();
    let mut digests = std::collections::BTreeSet::new();
    for seed in 1u64..32 {
        let mut spec = wdr_conformance::scenario::ScenarioSpec::from_seed(seed);
        spec.n = 16;
        if digests.insert(spec.normalized().build_graph().digest().0) {
            seeds.push(seed);
            if seeds.len() == 3 {
                break;
            }
        }
    }
    assert_eq!(seeds.len(), 3, "found three distinct graphs");

    for (i, &seed) in seeds.iter().enumerate() {
        let v = client
            .call(&query(
                i as u64,
                Algorithm::Extremes,
                GraphSource::Scenario { seed, n: Some(16) },
                false,
            ))
            .unwrap();
        assert_eq!(status(&v), "ok");
    }
    let m = flat(&registry);
    assert_eq!(m["serve.cache.misses"], 3.0);
    assert!(
        m["serve.cache.evictions"] >= 1.0,
        "third entry overflowed the budget"
    );
    assert!(
        m["serve.cache.bytes"] <= 450.0,
        "live bytes stay under budget, saw {}",
        m["serve.cache.bytes"]
    );

    // The evicted (oldest) entry must be recomputed on re-request.
    let v = client
        .call(&query(
            9,
            Algorithm::Extremes,
            GraphSource::Scenario {
                seed: seeds[0],
                n: Some(16),
            },
            false,
        ))
        .unwrap();
    assert_eq!(status(&v), "ok");
    assert_eq!(
        v.get("cached").and_then(serde_json::Value::as_bool),
        Some(false)
    );
    assert_eq!(flat(&registry)["serve.cache.misses"], 4.0);
    handle.shutdown();
}

#[test]
fn cache_bypass_returns_byte_identical_results() {
    let (handle, registry) = spawn(ServeConfig::default());
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let make = |id: u64, no_cache: bool| {
        query(
            id,
            Algorithm::Extremes,
            GraphSource::Scenario {
                seed: 11,
                n: Some(30),
            },
            no_cache,
        )
    };

    // Compute + cache, then a cached hit, then a bypassed recompute.
    assert_eq!(status(&client.call(&make(1, false)).unwrap()), "ok");
    let hit = client.call(&make(1, false)).unwrap();
    assert_eq!(
        hit.get("cached").and_then(serde_json::Value::as_bool),
        Some(true)
    );
    let hit_frame = client.last_frame().to_vec();
    let bypass = client.call(&make(1, true)).unwrap();
    assert_eq!(
        bypass.get("cached").and_then(serde_json::Value::as_bool),
        Some(false)
    );
    let bypass_frame = client.last_frame().to_vec();

    // The `result` member must match byte for byte (responses differ
    // only in the `cached` flag, which sits before `result`).
    let result_bytes = |frame: &[u8]| {
        let text = std::str::from_utf8(frame).unwrap();
        let start = text.find("\"result\":").unwrap() + "\"result\":".len();
        let end = text.rfind(",\"status\"").unwrap();
        text[start..end].to_string()
    };
    assert_eq!(
        result_bytes(&hit_frame),
        result_bytes(&bypass_frame),
        "bypassed answers are byte-identical to cached ones"
    );

    let m = flat(&registry);
    assert_eq!(m["serve.cache.bypassed"], 1.0);
    assert_eq!(m["serve.cache.misses"], 1.0, "bypass did not repopulate");
    handle.shutdown();
}

#[test]
fn full_queues_reject_with_backpressure_status() {
    // One worker, one queue slot: six concurrent, individually slow
    // queries cannot all be admitted.
    let (handle, registry) = spawn(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();
    let joins: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let n = 2000 + i as usize; // distinct graphs → distinct keys
                let mut c = Client::connect(&addr).unwrap();
                let v = c
                    .call(&query(
                        i,
                        Algorithm::Eccentricities,
                        GraphSource::Explicit {
                            n,
                            edges: path_edges(n, 50),
                        },
                        false,
                    ))
                    .unwrap();
                (status(&v).to_string(), error_kind(&v).to_string())
            })
        })
        .collect();
    let outcomes: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let ok = outcomes.iter().filter(|(s, _)| s == "ok").count();
    let rejected = outcomes
        .iter()
        .filter(|(s, k)| s == "rejected" && k == "overloaded")
        .count();
    assert_eq!(ok + rejected, 6, "every query got a definite answer");
    assert!(ok >= 1, "the admitted queries completed");
    assert!(
        rejected >= 1,
        "a full shard queue pushes back explicitly, outcomes: {outcomes:?}"
    );
    assert!(flat(&registry)["serve.responses.rejected"] >= 1.0);
    handle.shutdown();
}

#[test]
fn replay_reruns_the_conformance_oracles() {
    let (handle, _registry) = spawn(ServeConfig::default());
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let v = client
        .call(&query(
            1,
            Algorithm::Replay,
            GraphSource::Scenario { seed: 1, n: None },
            false,
        ))
        .unwrap();
    assert_eq!(status(&v), "ok");
    let result = v.get("result").expect("result");
    assert_eq!(
        result.get("passed").and_then(serde_json::Value::as_bool),
        Some(true),
        "clean corpus seed replays green: {result:?}"
    );
    assert_eq!(result.get("failure"), Some(&serde_json::Value::Null));

    // Replays are cached under their scenario seed.
    let v = client
        .call(&query(
            2,
            Algorithm::Replay,
            GraphSource::Scenario { seed: 1, n: None },
            false,
        ))
        .unwrap();
    assert_eq!(
        v.get("cached").and_then(serde_json::Value::as_bool),
        Some(true)
    );
    handle.shutdown();
}
