//! The daemon: TCP accept loop, sharded worker pool, and the request
//! pipeline connecting them through the result cache.
//!
//! Request flow for a cacheable query:
//!
//! ```text
//! read_frame → parse → GraphStore::resolve → cache_key
//!   ├─ Hit     → respond from the cached value
//!   ├─ Follow  → block on the leader's InflightCell, respond
//!   └─ Lead    → try_push onto shard fnv1a(key) % workers
//!        ├─ queue full → Rejected fans out to followers; "rejected" frame
//!        └─ worker computes (persistent QueryEngine, zero-alloc kernels),
//!           ResultCache::complete inserts + evicts + wakes waiters
//! ```
//!
//! Sharding by cache key keeps identical queries on one worker (their
//! coalescing window is widest there) while spreading distinct keys across
//! the pool. Queues are bounded: a full shard answers `"rejected"`
//! immediately instead of letting latency grow without bound.

use crate::cache::{Admission, Fulfillment, InflightCell, ResultCache};
use crate::engine::{cache_key, run_replay, GraphStore, QueryEngine};
use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::protocol::{
    error_response, ok_response, read_frame, write_frame, Algorithm, GraphSource, Query, Request,
    RequestKind,
};
use congest_graph::WeightedGraph;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use wdr_metrics::MetricsRegistry;

/// Tunables for one server instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Worker threads — one shard queue and one persistent
    /// [`QueryEngine`] each.
    pub workers: usize,
    /// Result-cache budget in bytes (keys + values + overhead).
    pub cache_capacity_bytes: usize,
    /// Per-shard bounded queue depth; a full queue rejects.
    pub queue_capacity: usize,
    /// Graph-store LRU capacity (number of built graphs kept).
    pub graph_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_capacity_bytes: 4 << 20,
            queue_capacity: 64,
            graph_capacity: 64,
        }
    }
}

/// One unit of compute handed to a worker.
struct Job {
    payload: JobPayload,
    cell: Arc<InflightCell>,
    /// `Some` → complete through the cache (insert + fan out);
    /// `None` → a `no_cache` bypass, fulfill the private cell directly.
    key: Option<String>,
}

enum JobPayload {
    Kernel {
        graph: Arc<WeightedGraph>,
        algorithm: Algorithm,
    },
    Replay {
        seed: u64,
        n: Option<usize>,
    },
}

/// A bounded MPSC queue feeding one worker.
struct Shard {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; a full queue is explicit backpressure.
    fn try_push(&self, shard: usize, job: Job) -> Result<(), ServeError> {
        let mut q = self.queue.lock().expect("shard lock");
        if q.len() >= self.capacity {
            return Err(ServeError::Overloaded { shard });
        }
        q.push_back(job);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once shut down and drained.
    fn pop(&self, shutdown: &AtomicBool) -> Option<Job> {
        let mut q = self.queue.lock().expect("shard lock");
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            q = self.available.wait(q).expect("shard wait");
        }
    }
}

struct Shared {
    cache: ResultCache,
    store: GraphStore,
    metrics: ServeMetrics,
    registry: MetricsRegistry,
    shards: Vec<Shard>,
    shutdown: AtomicBool,
}

/// Constructor namespace for the serving daemon.
pub struct Server;

impl Server {
    /// Binds, spawns the worker pool and accept loop, and returns a
    /// handle. Metrics land in `registry` under the `serve.` prefix.
    ///
    /// # Errors
    ///
    /// Bind/listen failures as [`ServeError::Io`].
    pub fn spawn(
        config: ServeConfig,
        registry: &MetricsRegistry,
    ) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let metrics = ServeMetrics::register(registry, "serve");
        let workers = config.workers.max(1);
        let shards = (0..workers)
            .map(|_| Shard::new(config.queue_capacity.max(1)))
            .collect();
        let shared = Arc::new(Shared {
            cache: ResultCache::new(config.cache_capacity_bytes, metrics.clone()),
            store: GraphStore::new(config.graph_capacity, &metrics),
            metrics,
            registry: registry.clone(),
            shards,
            shutdown: AtomicBool::new(false),
        });
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wdr-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wdr-serve-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            addr,
            shared,
            worker_handles,
            accept: Some(accept),
        })
    }
}

/// A running server. Dropping it shuts the server down and joins the
/// worker pool.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    worker_handles: Vec<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the shard queues, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for shard in &self.shared.shards {
            shard.available.notify_all();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Frames are small; latency matters more than packet coalescing.
        let _ = stream.set_nodelay(true);
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("wdr-serve-conn".to_string())
            .spawn(move || handle_connection(&shared, stream));
    }
}

fn worker_loop(shared: &Arc<Shared>, shard_idx: usize) {
    let mut engine = QueryEngine::new();
    while let Some(job) = shared.shards[shard_idx].pop(&shared.shutdown) {
        let start = Instant::now();
        let outcome = match &job.payload {
            JobPayload::Kernel { graph, algorithm } => match engine.run(graph, algorithm) {
                Ok(json) => Fulfillment::Value(json),
                Err(e) => Fulfillment::Failed {
                    kind: e.kind(),
                    message: format!("{e}"),
                },
            },
            JobPayload::Replay { seed, n } => Fulfillment::Value(run_replay(*seed, *n)),
        };
        shared
            .metrics
            .compute_us
            .observe(start.elapsed().as_micros() as u64);
        match &job.key {
            Some(key) => shared.cache.complete(key, &job.cell, outcome),
            None => job.cell.fulfill(outcome),
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let mut buf = Vec::new();
    loop {
        match read_frame(&mut stream, &mut buf) {
            Ok(true) => {}
            Ok(false) => return,
            Err(e @ ServeError::FrameTooLarge { .. }) => {
                // The unread payload bytes make the stream unframeable;
                // answer with the typed error, then close.
                shared.metrics.responses_error.inc();
                let _ = write_frame(&mut stream, error_response(0, &e).as_bytes());
                return;
            }
            Err(_) => return,
        }
        let start = Instant::now();
        let response = match Request::parse(&buf) {
            Ok(request) => {
                shared.metrics.requests.inc();
                handle_request(shared, &request)
            }
            Err(e) => {
                shared.metrics.responses_error.inc();
                error_response(0, &e)
            }
        };
        shared
            .metrics
            .request_us
            .observe(start.elapsed().as_micros() as u64);
        if write_frame(&mut stream, response.as_bytes()).is_err() {
            return;
        }
    }
}

fn handle_request(shared: &Arc<Shared>, request: &Request) -> String {
    match &request.kind {
        RequestKind::Ping => {
            shared.metrics.responses_ok.inc();
            ok_response(request.id, false, "{\"pong\":true}")
        }
        RequestKind::Stats => {
            shared.metrics.responses_ok.inc();
            ok_response(request.id, false, &render_stats(&shared.registry))
        }
        RequestKind::Query(query) => handle_query(shared, request.id, query),
    }
}

fn handle_query(shared: &Arc<Shared>, id: u64, query: &Query) -> String {
    let resolved = match shared.store.resolve(&query.source) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.responses_error.inc();
            return error_response(id, &e);
        }
    };
    let seed = match query.source {
        GraphSource::Scenario { seed, .. } => seed,
        GraphSource::Explicit { .. } | GraphSource::File { .. } => 0,
    };
    let key = cache_key(resolved.digest, &query.algorithm, seed);
    let shard_idx =
        (wdr_metrics::trajectory::fnv1a_64(key.as_bytes()) % shared.shards.len() as u64) as usize;

    let (cell, completion_key) = if query.no_cache {
        shared.metrics.cache_bypassed.inc();
        (Arc::new(InflightCell::new()), None)
    } else {
        match shared.cache.admit(&key) {
            Admission::Hit(value) => {
                shared.metrics.responses_ok.inc();
                return ok_response(id, true, &value);
            }
            Admission::Follow(cell) => {
                return finish(shared, id, cell.wait(), true);
            }
            Admission::Lead(cell) => (cell, Some(key.clone())),
        }
    };

    let payload = match &query.algorithm {
        Algorithm::Replay => JobPayload::Replay {
            seed,
            n: match query.source {
                GraphSource::Scenario { n, .. } => n,
                GraphSource::Explicit { .. } | GraphSource::File { .. } => None,
            },
        },
        algorithm => JobPayload::Kernel {
            graph: Arc::clone(&resolved.graph),
            algorithm: algorithm.clone(),
        },
    };
    let job = Job {
        payload,
        cell: Arc::clone(&cell),
        key: completion_key.clone(),
    };
    if let Err(e) = shared.shards[shard_idx].try_push(shard_idx, job) {
        // The leader could not enqueue: fan the rejection out so every
        // coalesced follower is released too.
        if let Some(key) = &completion_key {
            shared
                .cache
                .complete(key, &cell, Fulfillment::Rejected(format!("{e}")));
        }
        shared.metrics.responses_rejected.inc();
        return error_response(id, &e);
    }
    finish(shared, id, cell.wait(), false)
}

fn finish(shared: &Arc<Shared>, id: u64, outcome: Fulfillment, cached: bool) -> String {
    match outcome {
        Fulfillment::Value(value) => {
            shared.metrics.responses_ok.inc();
            ok_response(id, cached, &value)
        }
        Fulfillment::Rejected(message) => {
            shared.metrics.responses_rejected.inc();
            render_error(id, "overloaded", "rejected", &message)
        }
        Fulfillment::Failed { kind, message } => {
            shared.metrics.responses_error.inc();
            render_error(id, kind, "error", &message)
        }
    }
}

fn render_error(id: u64, kind: &str, status: &str, message: &str) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"error\":{\"kind\":\"");
    out.push_str(kind);
    out.push_str("\",\"message\":");
    serde::write_json_string(message, &mut out);
    out.push_str(&format!("}},\"id\":{id},\"status\":\"{status}\"}}"));
    out
}

fn render_stats(registry: &MetricsRegistry) -> String {
    let pairs = registry.snapshot().to_pairs();
    let mut out = String::with_capacity(32 + 32 * pairs.len());
    out.push_str("{\"metrics\":[");
    for (i, (name, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        serde::write_json_string(name, &mut out);
        out.push(',');
        if value.is_finite() {
            out.push_str(&format!("{value}"));
        } else {
            out.push_str("null");
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Client;

    fn spawn_default() -> (ServerHandle, MetricsRegistry) {
        let registry = MetricsRegistry::new();
        let handle = Server::spawn(ServeConfig::default(), &registry).expect("spawn");
        (handle, registry)
    }

    #[test]
    fn ping_stats_and_shutdown() {
        let (handle, _registry) = spawn_default();
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let pong = client
            .call(&Request {
                id: 1,
                kind: RequestKind::Ping,
            })
            .unwrap();
        assert_eq!(
            pong.get("status").and_then(serde_json::Value::as_str),
            Some("ok")
        );
        assert_eq!(pong.get("id").and_then(serde_json::Value::as_u64), Some(1));
        let stats = client
            .call(&Request {
                id: 2,
                kind: RequestKind::Stats,
            })
            .unwrap();
        let metrics = stats
            .get("result")
            .and_then(|r| r.get("metrics"))
            .and_then(serde_json::Value::as_array)
            .expect("metrics array");
        assert!(
            metrics.iter().any(|pair| {
                pair.as_array()
                    .and_then(|p| p.first())
                    .and_then(serde_json::Value::as_str)
                    == Some("serve.requests")
            }),
            "stats include serve.requests"
        );
        drop(client);
        handle.shutdown();
    }
}
