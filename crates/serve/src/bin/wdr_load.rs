//! `wdr-load` — closed-loop load driver for a running `wdr-serve`.
//!
//! ```text
//! wdr-load --addr HOST:PORT [--clients N] [--requests N]
//!          [--mix cold|repeat] [--seed S] [--n NODES]
//!          [--duration-secs S] [--out FILE]
//! ```
//!
//! Prints the [`wdr_serve::LoadReport`] JSON on stdout (and to `--out`
//! when given). Exits nonzero when any request errored.

use wdr_serve::{loadgen, LoadConfig, MixKind};

fn usage() -> ! {
    eprintln!(
        "usage: wdr-load --addr HOST:PORT [--clients N] [--requests N] \
         [--mix cold|repeat] [--seed S] [--n NODES] [--duration-secs S] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("error: {flag} needs a value");
        usage();
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: invalid value `{value}` for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut config = LoadConfig::default();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse(&arg, args.next()),
            "--clients" => config.clients = parse(&arg, args.next()),
            "--requests" => config.requests = parse(&arg, args.next()),
            "--mix" => {
                let name: String = parse(&arg, args.next());
                config.mix = match MixKind::parse(&name) {
                    Ok(mix) => mix,
                    Err(e) => {
                        eprintln!("error: {e}");
                        usage();
                    }
                };
            }
            "--seed" => config.seed = parse(&arg, args.next()),
            "--n" => config.n = Some(parse(&arg, args.next())),
            "--duration-secs" => {
                let secs: u64 = parse(&arg, args.next());
                config.deadline = Some(std::time::Duration::from_secs(secs));
            }
            "--out" => out_path = Some(parse(&arg, args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage();
            }
        }
    }
    if config.addr.is_empty() {
        eprintln!("error: --addr is required");
        usage();
    }
    let report = match loadgen::run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let json = report.to_json();
    println!("{json}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
    }
    if report.errors > 0 {
        eprintln!("error: {} request(s) failed", report.errors);
        std::process::exit(1);
    }
}
