//! `wdr-serve` — the distance-metrics serving daemon.
//!
//! ```text
//! wdr-serve [--addr HOST:PORT] [--workers N] [--cache-bytes B]
//!           [--queue N] [--graphs N]
//! ```
//!
//! Prints one `listening on <addr>` line once bound (scripts wait for
//! it), then serves until killed.

use wdr_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: wdr-serve [--addr HOST:PORT] [--workers N] [--cache-bytes B] \
         [--queue N] [--graphs N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("error: {flag} needs a value");
        usage();
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: invalid value `{value}` for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7411".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse(&arg, args.next()),
            "--workers" => config.workers = parse(&arg, args.next()),
            "--cache-bytes" => config.cache_capacity_bytes = parse(&arg, args.next()),
            "--queue" => config.queue_capacity = parse(&arg, args.next()),
            "--graphs" => config.graph_capacity = parse(&arg, args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage();
            }
        }
    }
    let registry = wdr_metrics::MetricsRegistry::new();
    let handle = match Server::spawn(config, &registry) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.addr());
    // Serve until killed: the daemon has no other exit condition.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
