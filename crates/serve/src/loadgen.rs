//! Closed-loop load driver for a running `wdr-serve` daemon.
//!
//! Each client thread owns one connection and issues the next request the
//! moment the previous response lands — classic closed-loop load, so
//! offered concurrency equals the client count. Clients draw request
//! indices from one shared atomic counter, which makes the request *mix*
//! (which seed/algorithm each index maps to) deterministic for a given
//! `(seed, mix)` regardless of thread interleaving.
//!
//! Two mixes bracket the cache's behavior:
//!
//! * [`MixKind::Cold`] — every request carries a fresh scenario seed
//!   *and* the `no_cache` flag. The bypass matters: the cache is
//!   content-addressed, and deterministic scenario families (a path is a
//!   path) collide across seeds, so unique seeds alone are not cache-cold.
//!   With the bypass, every request computes and throughput measures raw
//!   kernel + graph-build work.
//! * [`MixKind::Repeat`] — indices cycle through a fixed 8-entry working
//!   set, so steady state is nearly all cache hits.
//!
//! Rejected (backpressure) responses are retried after a short pause —
//! closed-loop clients don't drop work — and counted, so the report shows
//! how hard the server pushed back.

use crate::error::ServeError;
use crate::protocol::{Algorithm, Client, GraphSource, Query, Request, RequestKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The request mix a load run drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixKind {
    /// Unique scenario seed per request with `no_cache` set: every
    /// request computes — compute-bound by construction.
    Cold,
    /// A fixed 8-entry working set: cache-hot after warm-up.
    Repeat,
}

impl MixKind {
    /// The stable name used in reports and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            MixKind::Cold => "cold",
            MixKind::Repeat => "repeat",
        }
    }

    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for anything but `cold`/`repeat`.
    pub fn parse(name: &str) -> Result<MixKind, ServeError> {
        match name {
            "cold" => Ok(MixKind::Cold),
            "repeat" => Ok(MixKind::Repeat),
            other => Err(ServeError::BadRequest(format!(
                "unknown mix `{other}` (expected `cold` or `repeat`)"
            ))),
        }
    }
}

/// Tunables for one load run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Which request mix to drive.
    pub mix: MixKind,
    /// Base seed for the deterministic request stream.
    pub seed: u64,
    /// Scenario node-count override (`None` keeps each spec's own `n`).
    pub n: Option<usize>,
    /// Optional wall-clock cutoff; the run stops early once exceeded.
    pub deadline: Option<Duration>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            clients: 4,
            requests: 200,
            mix: MixKind::Repeat,
            seed: 42,
            n: None,
            deadline: None,
        }
    }
}

/// What one load run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The driven mix.
    pub mix: MixKind,
    /// Client threads used.
    pub clients: usize,
    /// Successfully answered requests.
    pub completed: usize,
    /// Backpressure responses absorbed (each was retried).
    pub rejected: usize,
    /// Transport or server errors (requests abandoned).
    pub errors: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Completed requests per second.
    pub qps: f64,
    /// Median client-observed latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile client-observed latency, microseconds.
    pub p99_us: u64,
    /// Server-side cache hits over the run (from `stats`).
    pub hits: u64,
    /// Server-side cache misses (led computations) over the run.
    pub misses: u64,
    /// Queries coalesced onto in-flight computations over the run.
    pub coalesced: u64,
    /// `hits / (hits + misses)`; `0.0` when no cacheable traffic ran.
    pub hit_rate: f64,
}

impl LoadReport {
    /// Renders the report as one sorted-key JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clients\":{},\"coalesced\":{},\"completed\":{},\"errors\":{},\
             \"hit_rate\":{:.4},\"hits\":{},\"misses\":{},\"mix\":\"{}\",\
             \"p50_us\":{},\"p99_us\":{},\"qps\":{:.2},\"rejected\":{},\
             \"wall_secs\":{:.3}}}",
            self.clients,
            self.coalesced,
            self.completed,
            self.errors,
            self.hit_rate,
            self.hits,
            self.misses,
            self.mix.name(),
            self.p50_us,
            self.p99_us,
            self.qps,
            self.rejected,
            self.wall_secs
        )
    }
}

/// SplitMix64 — the same mixer the conformance corpus uses, copied locally
/// because it is private there.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministically maps request index `idx` to its query.
fn query_for(mix: MixKind, base_seed: u64, n: Option<usize>, idx: u64) -> Query {
    match mix {
        MixKind::Cold => {
            // A fresh seed every request, and bypass the cache: identical
            // graphs from different seeds would otherwise share entries.
            let mut state = base_seed ^ idx;
            let scenario = splitmix64(&mut state);
            let algorithm = match idx % 4 {
                0 => Algorithm::Extremes,
                1 => Algorithm::Eccentricities,
                2 => Algorithm::Diameter,
                _ => Algorithm::Radius,
            };
            Query {
                algorithm,
                source: GraphSource::Scenario { seed: scenario, n },
                no_cache: true,
            }
        }
        MixKind::Repeat => {
            // A fixed working set of 4 graphs × 2 algorithms.
            let slot = idx % 8;
            let scenario = base_seed.wrapping_add(slot / 2);
            let algorithm = if slot.is_multiple_of(2) {
                Algorithm::Extremes
            } else {
                Algorithm::Eccentricities
            };
            Query {
                algorithm,
                source: GraphSource::Scenario { seed: scenario, n },
                no_cache: false,
            }
        }
    }
}

struct ClientTally {
    latencies_us: Vec<u64>,
    completed: usize,
    rejected: usize,
    errors: usize,
}

fn client_loop(
    addr: &str,
    mix: MixKind,
    base_seed: u64,
    n: Option<usize>,
    total: usize,
    counter: &AtomicU64,
    deadline: Option<Instant>,
) -> Result<ClientTally, ServeError> {
    let mut client = Client::connect(addr)?;
    let mut tally = ClientTally {
        latencies_us: Vec::with_capacity(total / 2 + 1),
        completed: 0,
        rejected: 0,
        errors: 0,
    };
    loop {
        let idx = counter.fetch_add(1, Ordering::Relaxed);
        if idx >= total as u64 {
            return Ok(tally);
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Ok(tally);
            }
        }
        let request = Request {
            id: idx,
            kind: RequestKind::Query(query_for(mix, base_seed, n, idx)),
        };
        // Closed loop: retry rejected (backpressure) responses, bounded
        // so a wedged server cannot hang the driver forever.
        let mut attempts = 0usize;
        loop {
            let started = Instant::now();
            let response = client.call(&request)?;
            let status = response
                .get("status")
                .and_then(serde_json::Value::as_str)
                .unwrap_or("error");
            match status {
                "ok" => {
                    tally
                        .latencies_us
                        .push(started.elapsed().as_micros() as u64);
                    tally.completed += 1;
                    break;
                }
                "rejected" => {
                    tally.rejected += 1;
                    attempts += 1;
                    if attempts >= 1000 {
                        tally.errors += 1;
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                _ => {
                    tally.errors += 1;
                    break;
                }
            }
        }
    }
}

/// Reads `serve.{metric}` out of a `stats` response.
fn stat(metrics: &[serde_json::Value], name: &str) -> f64 {
    metrics
        .iter()
        .filter_map(serde_json::Value::as_array)
        .find(|pair| pair.first().and_then(serde_json::Value::as_str) == Some(name))
        .and_then(|pair| pair.get(1))
        .and_then(serde_json::Value::as_f64)
        .unwrap_or(0.0)
}

/// Drives one load run against `config.addr` and reports what happened.
///
/// Cache counters are measured server-side as a before/after delta via
/// `stats` requests, so concurrent runs against a shared daemon should be
/// avoided (the CLI and E10 both own their daemon).
///
/// # Errors
///
/// Connection failures; per-request errors are *counted*, not returned.
pub fn run(config: &LoadConfig) -> Result<LoadReport, ServeError> {
    let before = fetch_cache_counters(&config.addr)?;
    let counter = Arc::new(AtomicU64::new(0));
    let deadline = config.deadline.map(|d| Instant::now() + d);
    let started = Instant::now();
    let mut joins = Vec::with_capacity(config.clients.max(1));
    for _ in 0..config.clients.max(1) {
        let addr = config.addr.clone();
        let counter = Arc::clone(&counter);
        let (mix, seed, n, total) = (config.mix, config.seed, config.n, config.requests);
        joins.push(std::thread::spawn(move || {
            client_loop(&addr, mix, seed, n, total, &counter, deadline)
        }));
    }
    let mut latencies = Vec::new();
    let mut completed = 0usize;
    let mut rejected = 0usize;
    let mut errors = 0usize;
    for join in joins {
        match join.join().expect("load client panicked") {
            Ok(tally) => {
                latencies.extend(tally.latencies_us);
                completed += tally.completed;
                rejected += tally.rejected;
                errors += tally.errors;
            }
            Err(_) => errors += 1,
        }
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    let after = fetch_cache_counters(&config.addr)?;
    let hits = after.0.saturating_sub(before.0);
    let misses = after.1.saturating_sub(before.1);
    let coalesced = after.2.saturating_sub(before.2);
    let cacheable = hits + misses;
    Ok(LoadReport {
        mix: config.mix,
        clients: config.clients.max(1),
        completed,
        rejected,
        errors,
        wall_secs,
        qps: completed as f64 / wall_secs,
        p50_us: percentile(&latencies, 50),
        p99_us: percentile(&latencies, 99),
        hits,
        misses,
        coalesced,
        hit_rate: if cacheable == 0 {
            0.0
        } else {
            hits as f64 / cacheable as f64
        },
    })
}

fn fetch_cache_counters(addr: &str) -> Result<(u64, u64, u64), ServeError> {
    let mut client = Client::connect(addr)?;
    let stats = client.call(&Request {
        id: 0,
        kind: RequestKind::Stats,
    })?;
    let metrics = stats
        .get("result")
        .and_then(|r| r.get("metrics"))
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::InvalidJson("stats response without metrics".to_string()))?;
    Ok((
        stat(metrics, "serve.cache.hits") as u64,
        stat(metrics, "serve.cache.misses") as u64,
        stat(metrics, "serve.cache.coalesced") as u64,
    ))
}

/// Exact percentile by nearest-rank on a sorted slice (`0` when empty).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 - 1) * pct / 100;
    sorted[rank as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_deterministic_and_shaped() {
        // Cold: no two of the first 64 requests share a cache key.
        let mut seen = std::collections::BTreeSet::new();
        for idx in 0..64 {
            let q = query_for(MixKind::Cold, 7, Some(32), idx);
            let GraphSource::Scenario { seed, .. } = q.source else {
                panic!("cold mix uses scenario sources");
            };
            assert!(seen.insert((seed, q.algorithm.name())), "idx {idx} repeats");
            assert!(q.no_cache, "cold mix bypasses the cache");
            assert_eq!(
                q,
                query_for(MixKind::Cold, 7, Some(32), idx),
                "deterministic"
            );
        }
        // Repeat: exactly 8 distinct (seed, algorithm) pairs.
        let distinct: std::collections::BTreeSet<_> = (0..64)
            .map(|idx| {
                let q = query_for(MixKind::Repeat, 7, None, idx);
                let GraphSource::Scenario { seed, .. } = q.source else {
                    panic!("repeat mix uses scenario sources");
                };
                (seed, q.algorithm.name())
            })
            .collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[5], 50), 5);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
    }

    #[test]
    fn report_json_has_sorted_keys() {
        let report = LoadReport {
            mix: MixKind::Repeat,
            clients: 2,
            completed: 10,
            rejected: 1,
            errors: 0,
            wall_secs: 0.5,
            qps: 20.0,
            p50_us: 100,
            p99_us: 900,
            hits: 8,
            misses: 2,
            coalesced: 0,
            hit_rate: 0.8,
        };
        let v = serde_json::from_str(&report.to_json()).unwrap();
        let keys: Vec<_> = v.as_object().unwrap().keys().cloned().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(
            v.get("mix").and_then(serde_json::Value::as_str),
            Some("repeat")
        );
        assert_eq!(v.get("qps").and_then(serde_json::Value::as_f64), Some(20.0));
    }
}
