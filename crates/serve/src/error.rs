//! Typed errors for every socket/serde boundary of the serving layer.
//!
//! The request path never `unwrap()`s on bytes it did not produce itself:
//! short reads become [`ServeError::TruncatedFrame`], hostile length
//! prefixes become [`ServeError::FrameTooLarge`], undecodable payloads
//! become [`ServeError::InvalidJson`], and semantically bad requests
//! become [`ServeError::BadRequest`]. Each variant maps to a stable
//! `kind` string carried in error responses, so clients can branch
//! without parsing prose.

use std::fmt;

/// Everything that can go wrong between a client byte stream and a
/// computed answer.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying socket/filesystem error.
    Io(std::io::Error),
    /// The stream ended inside a frame (length prefix or payload).
    TruncatedFrame {
        /// Bytes actually read before EOF.
        got: usize,
        /// Bytes the frame header promised.
        want: usize,
    },
    /// A length prefix exceeded [`crate::protocol::MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The advertised payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The payload was not valid UTF-8 JSON.
    InvalidJson(String),
    /// The JSON decoded but violated the request schema.
    BadRequest(String),
    /// A shard queue was full — explicit backpressure, not an error in
    /// the transport sense (mapped to a `"rejected"` response).
    Overloaded {
        /// The shard whose bounded queue was full.
        shard: usize,
    },
    /// The server is shutting down.
    Shutdown,
}

impl ServeError {
    /// Stable machine-readable discriminator used in error responses.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Io(_) => "io",
            ServeError::TruncatedFrame { .. } => "truncated_frame",
            ServeError::FrameTooLarge { .. } => "frame_too_large",
            ServeError::InvalidJson(_) => "invalid_json",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::TruncatedFrame { got, want } => {
                write!(f, "truncated frame: got {got} of {want} bytes before EOF")
            }
            ServeError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ServeError::InvalidJson(msg) => write!(f, "invalid JSON payload: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Overloaded { shard } => {
                write!(f, "shard {shard} queue full — retry later")
            }
            ServeError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let errors = [
            ServeError::Io(std::io::Error::other("x")),
            ServeError::TruncatedFrame { got: 1, want: 4 },
            ServeError::FrameTooLarge { len: 9, max: 4 },
            ServeError::InvalidJson("x".into()),
            ServeError::BadRequest("x".into()),
            ServeError::Overloaded { shard: 0 },
            ServeError::Shutdown,
        ];
        let kinds: std::collections::BTreeSet<_> = errors.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), errors.len(), "each variant has its own kind");
        for e in &errors {
            assert!(!format!("{e}").is_empty());
        }
    }
}
