//! Pre-registered [`wdr_metrics`] handles for every serving-layer metric.
//!
//! Registration happens once at server spawn; every hot-path update is a
//! single relaxed atomic operation with zero heap traffic, mirroring the
//! `SimMetrics` bundle in `congest-sim`. The `stats` request type snapshots
//! the same registry over the wire, so `wdr-load` can compute cache hit
//! rates without process-local access.

use wdr_metrics::{Counter, Gauge, Histogram, MetricsRegistry};

/// Handles for the serving-layer metrics.
///
/// Names are `{prefix}.{metric}` (prefix conventionally `"serve"`):
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `requests` | counter | frames parsed as requests |
/// | `responses.ok` | counter | successful answers |
/// | `responses.error` | counter | typed error responses |
/// | `responses.rejected` | counter | backpressure rejections |
/// | `cache.hits` … | counter | result-cache traffic (see below) |
/// | `cache.bytes` / `cache.entries` | gauge | live cache footprint |
/// | `graphs.built` / `graphs.evicted` | counter | graph-store churn |
/// | `compute_us` | histogram | kernel compute time per job, µs |
/// | `request_us` | histogram | server-side request latency, µs |
///
/// Cache counters: `cache.hits` (served from a completed entry),
/// `cache.misses` (admission led a new computation — equals the number of
/// kernel computations performed for cacheable queries), `cache.coalesced`
/// (identical in-flight query joined the leader's computation),
/// `cache.bypassed` (`no_cache` queries), `cache.evictions` (entries
/// dropped by the byte-budget LRU).
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Frames parsed as requests.
    pub requests: Counter,
    /// Successful (`status: "ok"`) responses.
    pub responses_ok: Counter,
    /// Typed error responses.
    pub responses_error: Counter,
    /// Backpressure (`status: "rejected"`) responses.
    pub responses_rejected: Counter,
    /// Queries answered from a completed cache entry.
    pub cache_hits: Counter,
    /// Queries that led a new computation.
    pub cache_misses: Counter,
    /// Queries coalesced onto an identical in-flight computation.
    pub cache_coalesced: Counter,
    /// Queries that bypassed the cache (`no_cache`).
    pub cache_bypassed: Counter,
    /// Entries evicted by the byte-budget LRU.
    pub cache_evictions: Counter,
    /// Live cached bytes (keys + values).
    pub cache_bytes: Gauge,
    /// Live cached entries.
    pub cache_entries: Gauge,
    /// Graphs built (scenario or explicit) by the graph store.
    pub graphs_built: Counter,
    /// Graphs evicted from the store's LRU.
    pub graphs_evicted: Counter,
    /// Kernel compute time per job, microseconds.
    pub compute_us: Histogram,
    /// Server-side request latency (parse → response rendered), µs.
    pub request_us: Histogram,
}

impl ServeMetrics {
    /// Registers the full serving bundle under `{prefix}.…` in `registry`
    /// (idempotent: registering the same prefix twice shares the metrics).
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> ServeMetrics {
        let name = |metric: &str| format!("{prefix}.{metric}");
        ServeMetrics {
            requests: registry.counter(&name("requests")),
            responses_ok: registry.counter(&name("responses.ok")),
            responses_error: registry.counter(&name("responses.error")),
            responses_rejected: registry.counter(&name("responses.rejected")),
            cache_hits: registry.counter(&name("cache.hits")),
            cache_misses: registry.counter(&name("cache.misses")),
            cache_coalesced: registry.counter(&name("cache.coalesced")),
            cache_bypassed: registry.counter(&name("cache.bypassed")),
            cache_evictions: registry.counter(&name("cache.evictions")),
            cache_bytes: registry.gauge(&name("cache.bytes")),
            cache_entries: registry.gauge(&name("cache.entries")),
            graphs_built: registry.counter(&name("graphs.built")),
            graphs_evicted: registry.counter(&name("graphs.evicted")),
            compute_us: registry.histogram(&name("compute_us")),
            request_us: registry.histogram(&name("request_us")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_named() {
        let registry = MetricsRegistry::new();
        let a = ServeMetrics::register(&registry, "serve");
        let b = ServeMetrics::register(&registry, "serve");
        a.cache_hits.inc();
        b.cache_hits.inc();
        let flat = registry.snapshot().flatten();
        assert_eq!(flat["serve.cache.hits"], 2.0, "same prefix shares handles");
        assert!(flat.contains_key("serve.requests"));
        assert!(flat.contains_key("serve.cache.bytes"));
        assert!(flat.contains_key("serve.compute_us.p99"));
    }
}
