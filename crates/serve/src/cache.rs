//! Content-addressed result cache with LRU-by-bytes eviction and
//! in-flight coalescing.
//!
//! Keys are `digest|algorithm|params|seed` strings (see
//! [`crate::engine::cache_key`]) — content-addressed via
//! [`congest_graph::GraphDigest`], so two scenarios that build the same
//! graph share entries. Values are the pre-rendered result JSON, which
//! makes a hit a single string clone and guarantees cached and freshly
//! computed answers are byte-identical.
//!
//! **Admission** ([`ResultCache::admit`]) resolves each cacheable query to
//! one of three roles: `Hit` (a completed entry exists), `Lead` (first
//! asker — must compute and [`ResultCache::complete`]), or `Follow` (an
//! identical query is already in flight — block on the leader's
//! [`InflightCell`] instead of recomputing). Followers hold their own
//! `Arc` of the cell, so fan-out is deadlock-free even if the entry is
//! evicted immediately after completion.
//!
//! **Eviction** is LRU by *bytes* (key + value + a fixed per-entry
//! overhead), not entry count: eccentricity tables are two orders of
//! magnitude larger than diameter scalars, and a count-bounded cache would
//! let a handful of big values squeeze out everything else.

use crate::metrics::ServeMetrics;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

/// Fixed accounting overhead charged per entry on top of key/value bytes.
const ENTRY_OVERHEAD_BYTES: usize = 64;

/// How a leader's computation ended, fanned out to every waiter.
#[derive(Clone, Debug)]
pub enum Fulfillment {
    /// The rendered result JSON.
    Value(String),
    /// The leader could not even enqueue the job (shard queue full);
    /// every coalesced waiter is rejected with this message.
    Rejected(String),
    /// The computation failed; `kind` matches
    /// [`crate::error::ServeError::kind`].
    Failed {
        /// Machine-readable error discriminator.
        kind: &'static str,
        /// Human-readable detail.
        message: String,
    },
}

/// One in-flight computation: the leader fulfills it exactly once, any
/// number of followers block on it.
#[derive(Debug, Default)]
pub struct InflightCell {
    state: Mutex<Option<Fulfillment>>,
    done: Condvar,
}

impl InflightCell {
    /// Creates an unfulfilled cell.
    pub fn new() -> InflightCell {
        InflightCell::default()
    }

    /// Stores the outcome and wakes every waiter.
    pub fn fulfill(&self, outcome: Fulfillment) {
        let mut state = self.state.lock().expect("inflight lock");
        *state = Some(outcome);
        self.done.notify_all();
    }

    /// Blocks until the leader fulfills the cell.
    pub fn wait(&self) -> Fulfillment {
        let mut state = self.state.lock().expect("inflight lock");
        loop {
            if let Some(outcome) = state.as_ref() {
                return outcome.clone();
            }
            state = self.done.wait(state).expect("inflight wait");
        }
    }
}

/// The admission verdict for one cacheable query.
#[derive(Debug)]
pub enum Admission {
    /// A completed entry exists; here is its value.
    Hit(String),
    /// No entry and nothing in flight: the caller leads. It must
    /// eventually call [`ResultCache::complete`] with this cell.
    Lead(Arc<InflightCell>),
    /// An identical query is in flight; wait on the leader's cell.
    Follow(Arc<InflightCell>),
}

#[derive(Debug)]
struct Entry {
    value: String,
    bytes: usize,
    tick: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<String, Entry>,
    /// LRU order: tick → key. Ticks are unique, so this is a queue.
    order: BTreeMap<u64, String>,
    inflight: HashMap<String, Arc<InflightCell>>,
    bytes: usize,
    next_tick: u64,
}

/// The shared result cache. All methods are `&self`; internal locking.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity_bytes: usize,
    metrics: ServeMetrics,
}

impl ResultCache {
    /// Creates a cache bounded to `capacity_bytes` of keys + values
    /// (+ fixed per-entry overhead), reporting through `metrics`.
    pub fn new(capacity_bytes: usize, metrics: ServeMetrics) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner::default()),
            capacity_bytes,
            metrics,
        }
    }

    /// Admits one cacheable query, bumping the hit/miss/coalesced
    /// counters as a side effect.
    pub fn admit(&self, key: &str) -> Admission {
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(entry) = inner.entries.get(key) {
            let (old_tick, value) = (entry.tick, entry.value.clone());
            let tick = inner.next_tick;
            inner.next_tick += 1;
            inner.order.remove(&old_tick);
            inner.order.insert(tick, key.to_string());
            inner.entries.get_mut(key).expect("entry present").tick = tick;
            self.metrics.cache_hits.inc();
            return Admission::Hit(value);
        }
        if let Some(cell) = inner.inflight.get(key) {
            self.metrics.cache_coalesced.inc();
            return Admission::Follow(Arc::clone(cell));
        }
        let cell = Arc::new(InflightCell::new());
        inner.inflight.insert(key.to_string(), Arc::clone(&cell));
        self.metrics.cache_misses.inc();
        Admission::Lead(cell)
    }

    /// Completes a led computation: inserts successful values (evicting
    /// LRU entries past the byte budget), clears the in-flight slot, and
    /// fans `outcome` out to every follower blocked on `cell`.
    pub fn complete(&self, key: &str, cell: &InflightCell, outcome: Fulfillment) {
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.inflight.remove(key);
            if let Fulfillment::Value(value) = &outcome {
                let bytes = key.len() + value.len() + ENTRY_OVERHEAD_BYTES;
                let tick = inner.next_tick;
                inner.next_tick += 1;
                if let Some(old) = inner.entries.insert(
                    key.to_string(),
                    Entry {
                        value: value.clone(),
                        bytes,
                        tick,
                    },
                ) {
                    inner.order.remove(&old.tick);
                    inner.bytes -= old.bytes;
                }
                inner.order.insert(tick, key.to_string());
                inner.bytes += bytes;
                while inner.bytes > self.capacity_bytes {
                    let Some((&oldest, _)) = inner.order.iter().next() else {
                        break;
                    };
                    let victim = inner.order.remove(&oldest).expect("tick present");
                    let dropped = inner.entries.remove(&victim).expect("entry present");
                    inner.bytes -= dropped.bytes;
                    self.metrics.cache_evictions.inc();
                }
                self.metrics.cache_bytes.set(inner.bytes as f64);
                self.metrics.cache_entries.set(inner.entries.len() as f64);
            }
        }
        cell.fulfill(outcome);
    }

    /// Live `(entries, bytes)` — for tests and introspection.
    pub fn footprint(&self) -> (usize, usize) {
        let inner = self.inner.lock().expect("cache lock");
        (inner.entries.len(), inner.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdr_metrics::MetricsRegistry;

    fn cache(capacity: usize) -> (ResultCache, MetricsRegistry) {
        let registry = MetricsRegistry::new();
        let metrics = ServeMetrics::register(&registry, "serve");
        (ResultCache::new(capacity, metrics), registry)
    }

    fn lead(cache: &ResultCache, key: &str) -> Arc<InflightCell> {
        match cache.admit(key) {
            Admission::Lead(cell) => cell,
            other => panic!("expected Lead for {key}, got {other:?}"),
        }
    }

    #[test]
    fn admit_compute_hit_cycle() {
        let (cache, registry) = cache(1 << 16);
        let cell = lead(&cache, "k1");
        // A second asker while in flight coalesces.
        match cache.admit("k1") {
            Admission::Follow(follower) => {
                cache.complete("k1", &cell, Fulfillment::Value("{\"d\":3}".into()));
                match follower.wait() {
                    Fulfillment::Value(v) => assert_eq!(v, "{\"d\":3}"),
                    other => panic!("follower got {other:?}"),
                }
            }
            other => panic!("expected Follow, got {other:?}"),
        }
        // After completion: a hit.
        match cache.admit("k1") {
            Admission::Hit(v) => assert_eq!(v, "{\"d\":3}"),
            other => panic!("expected Hit, got {other:?}"),
        }
        let flat = registry.snapshot().flatten();
        assert_eq!(flat["serve.cache.misses"], 1.0);
        assert_eq!(flat["serve.cache.coalesced"], 1.0);
        assert_eq!(flat["serve.cache.hits"], 1.0);
    }

    #[test]
    fn failed_and_rejected_outcomes_are_not_cached() {
        let (cache, _registry) = cache(1 << 16);
        let cell = lead(&cache, "k");
        cache.complete("k", &cell, Fulfillment::Rejected("full".into()));
        assert_eq!(cache.footprint(), (0, 0));
        // The key is admissible again (fresh lead), not poisoned.
        let cell = lead(&cache, "k");
        cache.complete(
            "k",
            &cell,
            Fulfillment::Failed {
                kind: "bad_request",
                message: "x".into(),
            },
        );
        assert_eq!(cache.footprint(), (0, 0));
        lead(&cache, "k");
    }

    #[test]
    fn eviction_is_lru_and_respects_the_byte_budget() {
        // Budget fits two of the three entries.
        let value = "v".repeat(100);
        let per_entry = 2 + value.len() + ENTRY_OVERHEAD_BYTES;
        let (cache, registry) = cache(2 * per_entry + per_entry / 2);
        for key in ["k1", "k2", "k3"] {
            let cell = lead(&cache, key);
            cache.complete(key, &cell, Fulfillment::Value(value.clone()));
        }
        let (entries, bytes) = cache.footprint();
        assert_eq!(entries, 2);
        assert!(bytes <= 2 * per_entry + per_entry / 2, "byte budget held");
        // k1 was least recently used → evicted; k2/k3 hit.
        assert!(matches!(cache.admit("k2"), Admission::Hit(_)));
        assert!(matches!(cache.admit("k3"), Admission::Hit(_)));
        assert!(matches!(cache.admit("k1"), Admission::Lead(_)));
        let flat = registry.snapshot().flatten();
        assert_eq!(flat["serve.cache.evictions"], 1.0);
        assert_eq!(flat["serve.cache.entries"], 2.0);
    }

    #[test]
    fn touching_an_entry_protects_it_from_eviction() {
        let value = "v".repeat(100);
        let per_entry = 2 + value.len() + ENTRY_OVERHEAD_BYTES;
        let (cache, _registry) = cache(2 * per_entry + per_entry / 2);
        for key in ["k1", "k2"] {
            let cell = lead(&cache, key);
            cache.complete(key, &cell, Fulfillment::Value(value.clone()));
        }
        // Touch k1 so k2 becomes the LRU victim when k3 arrives.
        assert!(matches!(cache.admit("k1"), Admission::Hit(_)));
        let cell = lead(&cache, "k3");
        cache.complete("k3", &cell, Fulfillment::Value(value.clone()));
        assert!(matches!(cache.admit("k1"), Admission::Hit(_)));
        assert!(matches!(cache.admit("k2"), Admission::Lead(_)));
    }
}
