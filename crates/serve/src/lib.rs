//! `wdr-serve`: a long-running distance-metrics query service.
//!
//! The simulator crates answer one question per process run; this crate
//! keeps the kernels hot. A daemon ([`server::Server`]) accepts
//! diameter / radius / eccentricity / scenario-replay queries over a
//! minimal length-prefixed TCP protocol ([`protocol`]), routes them
//! through a content-addressed result cache ([`cache`], keyed by
//! [`congest_graph::GraphDigest`]) into a sharded worker pool where each
//! worker owns a persistent [`congest_graph::SweepWorkspace`] — so
//! steady-state serving runs the kernel path without heap operations
//! ([`engine`], pinned by `tests/zero_alloc.rs`).
//!
//! Identical in-flight queries coalesce onto one computation; bounded
//! shard queues convert overload into explicit `"rejected"` responses
//! instead of unbounded latency. [`loadgen`] is the closed-loop driver
//! behind the `wdr-load` binary and the E10 sustained-throughput
//! experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use cache::{Admission, Fulfillment, InflightCell, ResultCache};
pub use engine::{cache_key, GraphStore, QueryEngine, ResolvedGraph};
pub use error::ServeError;
pub use loadgen::{LoadConfig, LoadReport, MixKind};
pub use metrics::ServeMetrics;
pub use protocol::{Algorithm, Client, GraphSource, Query, Request, RequestKind, MAX_FRAME_BYTES};
pub use server::{ServeConfig, Server, ServerHandle};
