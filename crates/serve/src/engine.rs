//! Query execution: a memoizing graph store plus per-worker kernel
//! engines with zero-steady-state-allocation compute paths.
//!
//! The split matters for the allocation contract: [`GraphStore`] resolves
//! a [`GraphSource`] to an `Arc<WeightedGraph>` + [`GraphDigest`]
//! (allocating — builds and digests are cached in a small LRU so repeated
//! queries skip both), while [`QueryEngine`] — one per worker, owning a
//! persistent [`SweepWorkspace`] — computes answers *without heap
//! operations* once its buffers are warm (pinned by
//! `tests/zero_alloc.rs`). Rendering the result JSON allocates, but that
//! is the response path, not the kernel path.

use crate::error::ServeError;
use crate::protocol::{Algorithm, GraphSource};
use congest_graph::{
    sweep::EdgeMetric, Dist, GraphBuilder, GraphDigest, SweepResult, SweepWorkspace, WeightedGraph,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use wdr_conformance::scenario::ScenarioSpec;

/// A resolved graph: the shared structure plus its content digest.
#[derive(Clone, Debug)]
pub struct ResolvedGraph {
    /// The (immutable, shared) graph.
    pub graph: Arc<WeightedGraph>,
    /// Its stable content digest — the cache-key component.
    pub digest: GraphDigest,
}

/// The content-addressed cache key for one query:
/// `digest|algorithm|params|seed`.
///
/// `seed` is `0` for the deterministic kernels (two scenarios that build
/// the same graph share entries — that is what "content-addressed"
/// buys); replay queries carry their scenario seed because the oracle
/// workload depends on the seed, not just the graph.
pub fn cache_key(digest: GraphDigest, algorithm: &Algorithm, seed: u64) -> String {
    let seed = match algorithm {
        Algorithm::Replay => seed,
        _ => 0,
    };
    format!(
        "{digest}|{}|{}|{seed}",
        algorithm.name(),
        algorithm.params_key()
    )
}

/// Applies a load-mix node-count override to a scenario spec.
fn scenario_spec(seed: u64, n: Option<usize>) -> ScenarioSpec {
    let mut spec = ScenarioSpec::from_seed(seed);
    if let Some(n) = n {
        spec.n = n;
        spec = spec.normalized();
    }
    spec
}

#[derive(Debug, Default)]
struct StoreInner {
    map: HashMap<String, (ResolvedGraph, u64)>,
    order: BTreeMap<u64, String>,
    next_tick: u64,
}

/// A small LRU of built graphs keyed by their *source* (scenario seed +
/// override, or explicit-graph digest), so steady-state serving of a
/// recurring working set neither rebuilds nor re-digests graphs.
#[derive(Debug)]
pub struct GraphStore {
    inner: Mutex<StoreInner>,
    capacity: usize,
    built: wdr_metrics::Counter,
    evicted: wdr_metrics::Counter,
}

impl GraphStore {
    /// Creates a store holding at most `capacity` graphs.
    pub fn new(capacity: usize, metrics: &crate::metrics::ServeMetrics) -> GraphStore {
        GraphStore {
            inner: Mutex::new(StoreInner::default()),
            capacity: capacity.max(1),
            built: metrics.graphs_built.clone(),
            evicted: metrics.graphs_evicted.clone(),
        }
    }

    /// Resolves `source` to a shared graph + digest, building at most
    /// once per live store entry.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when an explicit edge list fails
    /// validation ([`congest_graph::BuildGraphError`]) or a graph file
    /// fails to open ([`congest_graph::GraphIoError`]).
    pub fn resolve(&self, source: &GraphSource) -> Result<ResolvedGraph, ServeError> {
        let source_key = match source {
            GraphSource::Scenario { seed, n } => {
                format!("s{seed}.n{}", n.map_or(0, |n| n))
            }
            // File graphs are keyed by path: the mmap open is O(header)
            // and the digest comes straight off the header, so a cache
            // miss is already cheap — the LRU only spares the syscalls.
            GraphSource::File { path } => format!("f{path}"),
            GraphSource::Explicit { n, edges } => {
                // Explicit graphs are validated (and digested) before the
                // store is consulted; the digest *is* the source key.
                let mut b = GraphBuilder::new(*n);
                for &(u, v, w) in edges {
                    b.add_edge(u, v, w);
                }
                let graph = b
                    .build()
                    .map_err(|e| ServeError::BadRequest(format!("invalid graph: {e}")))?;
                let digest = graph.digest();
                let resolved = ResolvedGraph {
                    graph: Arc::new(graph),
                    digest,
                };
                self.insert(format!("x{digest}"), resolved.clone());
                return Ok(resolved);
            }
        };
        if let Some(found) = self.touch(&source_key) {
            return Ok(found);
        }
        let graph = match source {
            GraphSource::Scenario { seed, n } => scenario_spec(*seed, *n).build_graph(),
            GraphSource::File { path } => WeightedGraph::open_mmap(std::path::Path::new(path))
                .map_err(|e| ServeError::BadRequest(format!("graph file `{path}`: {e}")))?,
            GraphSource::Explicit { .. } => unreachable!("handled above"),
        };
        let digest = graph.digest();
        let resolved = ResolvedGraph {
            graph: Arc::new(graph),
            digest,
        };
        self.insert(source_key, resolved.clone());
        Ok(resolved)
    }

    fn touch(&self, key: &str) -> Option<ResolvedGraph> {
        let mut inner = self.inner.lock().expect("graph store lock");
        let (resolved, old_tick) = {
            let (resolved, tick) = inner.map.get(key)?;
            (resolved.clone(), *tick)
        };
        let tick = inner.next_tick;
        inner.next_tick += 1;
        inner.order.remove(&old_tick);
        inner.order.insert(tick, key.to_string());
        inner.map.get_mut(key).expect("present").1 = tick;
        Some(resolved)
    }

    fn insert(&self, key: String, resolved: ResolvedGraph) {
        let mut inner = self.inner.lock().expect("graph store lock");
        self.built.inc();
        let tick = inner.next_tick;
        inner.next_tick += 1;
        if let Some((_, old_tick)) = inner.map.insert(key.clone(), (resolved, tick)) {
            inner.order.remove(&old_tick);
        }
        inner.order.insert(tick, key);
        while inner.map.len() > self.capacity {
            let Some((&oldest, _)) = inner.order.iter().next() else {
                break;
            };
            let victim = inner.order.remove(&oldest).expect("tick present");
            inner.map.remove(&victim);
            self.evicted.inc();
        }
    }
}

/// Per-worker kernel engine. Owns a persistent [`SweepWorkspace`] and an
/// eccentricity buffer; after warm-up, every kernel below runs with zero
/// heap operations.
#[derive(Debug, Default)]
pub struct QueryEngine {
    sweep: SweepWorkspace,
    ecc_buf: Vec<Dist>,
}

impl QueryEngine {
    /// Creates an engine; buffers grow to the largest graph served.
    pub fn new() -> QueryEngine {
        QueryEngine::default()
    }

    /// Diameter/radius/witnesses by pruned sweeps (allocation-free when
    /// warm).
    pub fn extremes(&mut self, g: &WeightedGraph) -> SweepResult {
        self.sweep.extremes_into(g, EdgeMetric::Weighted)
    }

    /// One node's weighted eccentricity (allocation-free when warm).
    pub fn eccentricity(&mut self, g: &WeightedGraph, node: usize) -> Dist {
        self.sweep.sssp_mut().eccentricity(g, node)
    }

    /// All `n` weighted eccentricities into the engine's reusable buffer
    /// (allocation-free when warm).
    pub fn eccentricities(&mut self, g: &WeightedGraph) -> &[Dist] {
        self.ecc_buf.clear();
        self.ecc_buf.reserve(g.n());
        let ws = self.sweep.sssp_mut();
        for v in 0..g.n() {
            let ecc = ws.eccentricity(g, v);
            self.ecc_buf.push(ecc);
        }
        &self.ecc_buf
    }

    /// Runs `algorithm` on `g` and renders the result JSON (rendering
    /// allocates; the kernels above do not).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for out-of-range parameters (e.g. an
    /// eccentricity node ≥ `n`). [`Algorithm::Replay`] is not a kernel;
    /// passing it here is a bad request too (the server routes replays to
    /// [`run_replay`]).
    pub fn run(&mut self, g: &WeightedGraph, algorithm: &Algorithm) -> Result<String, ServeError> {
        match algorithm {
            Algorithm::Diameter => {
                let r = self.extremes(g);
                Ok(format!(
                    "{{\"connected\":{},\"diameter\":{},\"sweeps\":{},\"witness\":{}}}",
                    r.is_connected(),
                    render_dist(r.diameter),
                    r.sweeps,
                    r.diameter_witness
                ))
            }
            Algorithm::Radius => {
                let r = self.extremes(g);
                Ok(format!(
                    "{{\"connected\":{},\"radius\":{},\"sweeps\":{},\"witness\":{}}}",
                    r.is_connected(),
                    render_dist(r.radius),
                    r.sweeps,
                    r.radius_witness
                ))
            }
            Algorithm::Extremes => {
                let r = self.extremes(g);
                Ok(format!(
                    "{{\"connected\":{},\"diameter\":{},\"diameter_witness\":{},\"n\":{},\
                     \"radius\":{},\"radius_witness\":{},\"sweeps\":{}}}",
                    r.is_connected(),
                    render_dist(r.diameter),
                    r.diameter_witness,
                    r.n,
                    render_dist(r.radius),
                    r.radius_witness,
                    r.sweeps
                ))
            }
            Algorithm::Eccentricity { node } => {
                if *node >= g.n() {
                    return Err(ServeError::BadRequest(format!(
                        "node {node} out of range for a {}-node graph",
                        g.n()
                    )));
                }
                let ecc = self.eccentricity(g, *node);
                Ok(format!(
                    "{{\"eccentricity\":{},\"node\":{node}}}",
                    render_dist(ecc)
                ))
            }
            Algorithm::Eccentricities => {
                self.eccentricities(g);
                let mut out = String::with_capacity(16 + 8 * self.ecc_buf.len());
                out.push_str("{\"eccentricities\":[");
                for (i, &e) in self.ecc_buf.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&render_dist(e));
                }
                out.push_str(&format!("],\"n\":{}}}", g.n()));
                Ok(out)
            }
            Algorithm::Replay => Err(ServeError::BadRequest(
                "replay is not a kernel algorithm".to_string(),
            )),
        }
    }
}

/// Re-runs the conformance oracle suite for a scenario and renders the
/// verdict. Heavyweight by design (it may simulate quantum workloads);
/// results are cached under the scenario's seed.
pub fn run_replay(seed: u64, n: Option<usize>) -> String {
    let spec = scenario_spec(seed, n);
    match wdr_conformance::runner::first_failure(&spec) {
        None => format!(
            "{{\"failure\":null,\"n\":{},\"passed\":true,\"seed\":{seed}}}",
            spec.n
        ),
        Some(failure) => {
            let mut out = String::from("{\"failure\":");
            serde::write_json_string(&failure, &mut out);
            out.push_str(&format!(
                ",\"n\":{},\"passed\":false,\"seed\":{seed}}}",
                spec.n
            ));
            out
        }
    }
}

/// A finite distance renders as its integer; an infinite one as `null`.
fn render_dist(d: Dist) -> String {
    match d.finite() {
        Some(x) => x.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ServeMetrics;
    use congest_graph::{generators, sweep};
    use wdr_metrics::MetricsRegistry;

    fn store(capacity: usize) -> (GraphStore, MetricsRegistry) {
        let registry = MetricsRegistry::new();
        let metrics = ServeMetrics::register(&registry, "serve");
        (GraphStore::new(capacity, &metrics), registry)
    }

    #[test]
    fn engine_matches_library_kernels_and_renders_json() {
        let g = generators::grid(4, 5, 3);
        let mut engine = QueryEngine::new();
        let expected = sweep::extremes(&g);
        assert_eq!(engine.extremes(&g), expected);
        let rendered = engine.run(&g, &Algorithm::Extremes).unwrap();
        let v = serde_json::from_str(&rendered).unwrap();
        assert_eq!(
            v.get("diameter").and_then(serde_json::Value::as_u64),
            expected.diameter.finite()
        );
        assert_eq!(
            v.get("radius").and_then(serde_json::Value::as_u64),
            expected.radius.finite()
        );
        // Eccentricities agree with the library sweep.
        let eccs = sweep::all_eccentricities(&g, EdgeMetric::Weighted);
        assert_eq!(engine.eccentricities(&g), eccs.as_slice());
        // Out-of-range node is a typed error.
        match engine.run(&g, &Algorithm::Eccentricity { node: 999 }) {
            Err(ServeError::BadRequest(_)) => {}
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_graphs_render_null() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 2)]).unwrap();
        let mut engine = QueryEngine::new();
        let rendered = engine.run(&g, &Algorithm::Diameter).unwrap();
        let v = serde_json::from_str(&rendered).unwrap();
        assert_eq!(
            v.get("connected").and_then(serde_json::Value::as_bool),
            Some(false)
        );
        assert_eq!(v.get("diameter"), Some(&serde_json::Value::Null));
    }

    #[test]
    fn graph_store_memoizes_and_evicts() {
        let (store, registry) = store(2);
        let s0 = GraphSource::Scenario {
            seed: 11,
            n: Some(24),
        };
        let a = store.resolve(&s0).unwrap();
        let b = store.resolve(&s0).unwrap();
        assert_eq!(a.digest, b.digest);
        assert!(
            Arc::ptr_eq(&a.graph, &b.graph),
            "second resolve is memoized"
        );
        let flat = registry.snapshot().flatten();
        assert_eq!(flat["serve.graphs.built"], 1.0);

        // Fill past capacity → oldest evicted and rebuilt on next use.
        store
            .resolve(&GraphSource::Scenario {
                seed: 12,
                n: Some(24),
            })
            .unwrap();
        store
            .resolve(&GraphSource::Scenario {
                seed: 13,
                n: Some(24),
            })
            .unwrap();
        let c = store.resolve(&s0).unwrap();
        assert_eq!(c.digest, a.digest, "rebuild is deterministic");
        assert!(!Arc::ptr_eq(&c.graph, &a.graph), "s0 was evicted");
        let flat = registry.snapshot().flatten();
        assert!(flat["serve.graphs.evicted"] >= 1.0);
    }

    #[test]
    fn explicit_graphs_validate_and_digest() {
        let (store, _registry) = store(4);
        let good = GraphSource::Explicit {
            n: 3,
            edges: vec![(0, 1, 2), (1, 2, 3)],
        };
        let r = store.resolve(&good).unwrap();
        let local = WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 3)]).unwrap();
        assert_eq!(r.digest, local.digest());
        let bad = GraphSource::Explicit {
            n: 2,
            edges: vec![(0, 5, 1)],
        };
        match store.resolve(&bad) {
            Err(ServeError::BadRequest(msg)) => assert!(msg.contains("invalid graph")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn file_graphs_mmap_memoize_and_fail_typed() {
        let (store, registry) = store(4);
        let g = generators::grid(5, 6, 3);
        let dir = std::env::temp_dir().join(format!("wdr-serve-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.wdrg");
        g.write_binary(&path).unwrap();
        let source = GraphSource::File {
            path: path.display().to_string(),
        };
        let a = store.resolve(&source).unwrap();
        assert_eq!(a.digest, g.digest(), "digest comes off the header");
        assert_eq!(*a.graph, g);
        let b = store.resolve(&source).unwrap();
        assert!(
            Arc::ptr_eq(&a.graph, &b.graph),
            "second resolve is memoized"
        );
        let flat = registry.snapshot().flatten();
        assert_eq!(flat["serve.graphs.built"], 1.0);
        // A mapped graph serves the same kernels as an owned one.
        let mut engine = QueryEngine::new();
        let rendered = engine.run(&a.graph, &Algorithm::Extremes).unwrap();
        serde_json::from_str(&rendered).unwrap();
        // Missing or mangled files are typed errors, not panics.
        let missing = GraphSource::File {
            path: dir.join("absent.wdrg").display().to_string(),
        };
        match store.resolve(&missing) {
            Err(ServeError::BadRequest(msg)) => assert!(msg.contains("graph file")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        std::fs::write(dir.join("junk.wdrg"), b"not a graph").unwrap();
        let junk = GraphSource::File {
            path: dir.join("junk.wdrg").display().to_string(),
        };
        match store.resolve(&junk) {
            Err(ServeError::BadRequest(msg)) => assert!(msg.contains("graph file")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_keys_are_content_addressed() {
        let g = generators::path(5, 2);
        let d = g.digest();
        let k1 = cache_key(d, &Algorithm::Diameter, 7);
        let k2 = cache_key(d, &Algorithm::Diameter, 8);
        assert_eq!(k1, k2, "deterministic kernels ignore the seed");
        let k3 = cache_key(d, &Algorithm::Replay, 7);
        let k4 = cache_key(d, &Algorithm::Replay, 8);
        assert_ne!(k3, k4, "replay results depend on the scenario seed");
        assert_ne!(
            cache_key(d, &Algorithm::Eccentricity { node: 1 }, 0),
            cache_key(d, &Algorithm::Eccentricity { node: 2 }, 0),
            "params are part of the key"
        );
    }
}
