//! Wire protocol: length-prefixed TCP frames carrying JSON documents.
//!
//! No HTTP stack is vendored in-tree, so the protocol is the smallest
//! thing that multiplexes structured requests over a byte stream:
//!
//! ```text
//! frame    := len payload
//! len      := u32 big-endian, payload byte count, ≤ MAX_FRAME_BYTES
//! payload  := one JSON object (UTF-8, no trailing bytes)
//! ```
//!
//! Requests (client → server):
//!
//! ```json
//! {"id":1,"kind":"query","algorithm":"extremes","scenario":7,"n":96}
//! {"id":2,"kind":"query","algorithm":"eccentricity","node":3,
//!  "graph_n":4,"graph_edges":[[0,1,2],[1,2,3],[2,3,4]]}
//! {"id":3,"kind":"query","algorithm":"extremes","graph_file":"/data/giant.wdrg"}
//! {"id":4,"kind":"stats"}
//! {"id":5,"kind":"ping"}
//! ```
//!
//! Responses (server → client) always echo `id` and carry a `status` of
//! `"ok"`, `"error"`, or `"rejected"` (backpressure). Keys are emitted in
//! sorted order, so equal answers are byte-identical — the property the
//! cache-bypass test pins:
//!
//! ```json
//! {"cached":false,"id":1,"result":{...},"status":"ok"}
//! {"error":{"kind":"bad_request","message":"..."},"id":2,"status":"error"}
//! ```

use crate::error::ServeError;
use serde_json::Value;
use std::io::{ErrorKind, Read, Write};

/// Maximum accepted frame payload (1 MiB). A hostile or corrupt length
/// prefix fails fast with [`ServeError::FrameTooLarge`] instead of
/// triggering a giant allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Writes one `len ∥ payload` frame.
///
/// # Errors
///
/// [`ServeError::FrameTooLarge`] when `payload` exceeds
/// [`MAX_FRAME_BYTES`]; otherwise propagated I/O errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ServeError::FrameTooLarge {
            len: payload.len(),
            max: MAX_FRAME_BYTES,
        });
    }
    // One write for prefix + payload: two small writes would trip the
    // Nagle / delayed-ACK interaction and add ~40ms per frame on loopback.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame into `buf` (cleared first). Returns `false` on a clean
/// EOF *between* frames — the peer hung up, nothing is wrong.
///
/// # Errors
///
/// [`ServeError::TruncatedFrame`] when the stream ends mid-prefix or
/// mid-payload, [`ServeError::FrameTooLarge`] on an oversized prefix, and
/// [`ServeError::Io`] for transport failures.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool, ServeError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(ServeError::TruncatedFrame { got, want: 4 });
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ServeError::FrameTooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    buf.clear();
    buf.resize(len, 0);
    match r.read_exact(buf) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
            Err(ServeError::TruncatedFrame { got: 0, want: len })
        }
        Err(e) => Err(ServeError::Io(e)),
    }
}

/// The kernel (or replay) a query asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Weighted diameter `D_{G,w}` (pruned sweeps).
    Diameter,
    /// Weighted radius `R_{G,w}`.
    Radius,
    /// Diameter + radius + witnesses in one pruned computation.
    Extremes,
    /// One node's weighted eccentricity.
    Eccentricity {
        /// The node whose eccentricity is requested.
        node: usize,
    },
    /// All `n` weighted eccentricities.
    Eccentricities,
    /// Re-run the conformance oracle suite for a scenario seed.
    Replay,
}

impl Algorithm {
    /// The stable name used on the wire and in cache keys.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Diameter => "diameter",
            Algorithm::Radius => "radius",
            Algorithm::Extremes => "extremes",
            Algorithm::Eccentricity { .. } => "eccentricity",
            Algorithm::Eccentricities => "eccentricities",
            Algorithm::Replay => "replay",
        }
    }

    /// The params component of the cache key (empty for param-free
    /// algorithms).
    pub fn params_key(&self) -> String {
        match self {
            Algorithm::Eccentricity { node } => format!("node={node}"),
            _ => String::new(),
        }
    }
}

/// Where the queried graph comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphSource {
    /// A conformance [`wdr_conformance::scenario::ScenarioSpec`] built
    /// from `seed` (optionally with the node count overridden — load
    /// mixes use this to scale query cost).
    Scenario {
        /// The scenario seed.
        seed: u64,
        /// Overrides `ScenarioSpec::n` when set (re-normalized).
        n: Option<usize>,
    },
    /// An explicit edge list shipped in the request.
    Explicit {
        /// Node count.
        n: usize,
        /// `(u, v, w)` triples.
        edges: Vec<(usize, usize, u64)>,
    },
    /// A pre-built binary graph file on the server's filesystem, opened
    /// through `WeightedGraph::open_mmap` — the giant-graph path, where
    /// shipping an edge list over the wire would dwarf the query itself.
    File {
        /// Server-local path to a `.wdrg` file.
        path: String,
    },
}

/// One parsed query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// What to compute.
    pub algorithm: Algorithm,
    /// On which graph.
    pub source: GraphSource,
    /// Skip the result cache entirely (admission *and* insertion). The
    /// answer must be byte-identical to the cached one — pinned by
    /// `tests/serve.rs`.
    pub no_cache: bool,
}

/// One parsed request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What the client asked for.
    pub kind: RequestKind,
}

/// The request families the server understands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// A distance-metrics (or replay) computation.
    Query(Query),
    /// A snapshot of the server's metrics registry.
    Stats,
    /// Liveness probe.
    Ping,
}

fn field_u64(v: &Value, key: &str) -> Result<Option<u64>, ServeError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| {
            ServeError::BadRequest(format!("`{key}` must be a non-negative integer"))
        }),
    }
}

impl Request {
    /// Parses one frame payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidJson`] when the payload is not JSON at all,
    /// [`ServeError::BadRequest`] when it is JSON of the wrong shape.
    pub fn parse(payload: &[u8]) -> Result<Request, ServeError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| ServeError::InvalidJson(format!("not UTF-8: {e}")))?;
        let v: Value =
            serde_json::from_str(text).map_err(|e| ServeError::InvalidJson(format!("{e}")))?;
        let id = field_u64(&v, "id")?.unwrap_or(0);
        let kind = match v.get("kind").and_then(Value::as_str) {
            Some("ping") => RequestKind::Ping,
            Some("stats") => RequestKind::Stats,
            Some("query") => RequestKind::Query(Self::parse_query(&v)?),
            Some(other) => {
                return Err(ServeError::BadRequest(format!(
                    "unknown request kind `{other}`"
                )))
            }
            None => {
                return Err(ServeError::BadRequest(
                    "missing string field `kind`".to_string(),
                ))
            }
        };
        Ok(Request { id, kind })
    }

    fn parse_query(v: &Value) -> Result<Query, ServeError> {
        let algorithm = match v.get("algorithm").and_then(Value::as_str) {
            Some("diameter") => Algorithm::Diameter,
            Some("radius") => Algorithm::Radius,
            Some("extremes") => Algorithm::Extremes,
            Some("eccentricity") => Algorithm::Eccentricity {
                node: field_u64(v, "node")?.ok_or_else(|| {
                    ServeError::BadRequest("`eccentricity` needs a `node` field".to_string())
                })? as usize,
            },
            Some("eccentricities") => Algorithm::Eccentricities,
            Some("replay") => Algorithm::Replay,
            Some(other) => {
                return Err(ServeError::BadRequest(format!(
                    "unknown algorithm `{other}`"
                )))
            }
            None => {
                return Err(ServeError::BadRequest(
                    "missing string field `algorithm`".to_string(),
                ))
            }
        };
        let file = match v.get("graph_file") {
            None => None,
            Some(p) => Some(
                p.as_str()
                    .ok_or_else(|| {
                        ServeError::BadRequest("`graph_file` must be a string".to_string())
                    })?
                    .to_string(),
            ),
        };
        let source = match (field_u64(v, "scenario")?, v.get("graph_edges"), file) {
            (Some(_), _, Some(_)) | (_, Some(_), Some(_)) | (Some(_), Some(_), None) => {
                return Err(ServeError::BadRequest(
                    "give only one of `scenario`, `graph_edges`, or `graph_file`".to_string(),
                ))
            }
            (None, None, Some(path)) => GraphSource::File { path },
            (Some(seed), None, None) => GraphSource::Scenario {
                seed,
                n: field_u64(v, "n")?.map(|n| n as usize),
            },
            (None, Some(edges), None) => {
                let n = field_u64(v, "graph_n")?.ok_or_else(|| {
                    ServeError::BadRequest("`graph_edges` needs `graph_n`".to_string())
                })? as usize;
                let list = edges.as_array().ok_or_else(|| {
                    ServeError::BadRequest("`graph_edges` must be an array".to_string())
                })?;
                let mut parsed = Vec::with_capacity(list.len());
                for e in list {
                    let triple = e.as_array().filter(|t| t.len() == 3).ok_or_else(|| {
                        ServeError::BadRequest("each edge must be a `[u, v, w]` triple".to_string())
                    })?;
                    let get = |i: usize| {
                        triple[i].as_u64().ok_or_else(|| {
                            ServeError::BadRequest(
                                "edge components must be non-negative integers".to_string(),
                            )
                        })
                    };
                    parsed.push((get(0)? as usize, get(1)? as usize, get(2)?));
                }
                GraphSource::Explicit { n, edges: parsed }
            }
            (None, None, None) => {
                return Err(ServeError::BadRequest(
                    "missing graph source: `scenario`, `graph_n`+`graph_edges`, or `graph_file`"
                        .to_string(),
                ))
            }
        };
        if algorithm == Algorithm::Replay && !matches!(source, GraphSource::Scenario { .. }) {
            return Err(ServeError::BadRequest(
                "`replay` only works on `scenario` sources".to_string(),
            ));
        }
        let no_cache = match v.get("no_cache") {
            None => false,
            Some(b) => b.as_bool().ok_or_else(|| {
                ServeError::BadRequest("`no_cache` must be a boolean".to_string())
            })?,
        };
        Ok(Query {
            algorithm,
            source,
            no_cache,
        })
    }

    /// Renders this request as its wire JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"id\":");
        out.push_str(&self.id.to_string());
        match &self.kind {
            RequestKind::Ping => out.push_str(",\"kind\":\"ping\""),
            RequestKind::Stats => out.push_str(",\"kind\":\"stats\""),
            RequestKind::Query(q) => {
                out.push_str(",\"kind\":\"query\",\"algorithm\":\"");
                out.push_str(q.algorithm.name());
                out.push('"');
                if let Algorithm::Eccentricity { node } = q.algorithm {
                    out.push_str(&format!(",\"node\":{node}"));
                }
                match &q.source {
                    GraphSource::Scenario { seed, n } => {
                        out.push_str(&format!(",\"scenario\":{seed}"));
                        if let Some(n) = n {
                            out.push_str(&format!(",\"n\":{n}"));
                        }
                    }
                    GraphSource::Explicit { n, edges } => {
                        out.push_str(&format!(",\"graph_n\":{n},\"graph_edges\":["));
                        for (i, (u, v, w)) in edges.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            out.push_str(&format!("[{u},{v},{w}]"));
                        }
                        out.push(']');
                    }
                    GraphSource::File { path } => {
                        out.push_str(",\"graph_file\":");
                        serde::write_json_string(path, &mut out);
                    }
                }
                if q.no_cache {
                    out.push_str(",\"no_cache\":true");
                }
            }
        }
        out.push('}');
        out
    }
}

/// Renders a success response (keys in sorted order: `cached`, `id`,
/// `result`, `status`). `result_json` must already be a JSON document.
pub fn ok_response(id: u64, cached: bool, result_json: &str) -> String {
    format!("{{\"cached\":{cached},\"id\":{id},\"result\":{result_json},\"status\":\"ok\"}}")
}

/// Renders an error (`status: "error"`) or backpressure
/// (`status: "rejected"`) response for `err`.
pub fn error_response(id: u64, err: &ServeError) -> String {
    let status = if matches!(err, ServeError::Overloaded { .. }) {
        "rejected"
    } else {
        "error"
    };
    let mut out = String::with_capacity(96);
    out.push_str("{\"error\":{\"kind\":\"");
    out.push_str(err.kind());
    out.push_str("\",\"message\":");
    serde::write_json_string(&format!("{err}"), &mut out);
    out.push_str(&format!("}},\"id\":{id},\"status\":\"{status}\"}}"));
    out
}

/// A minimal blocking client: one connection, sequential request/response.
#[derive(Debug)]
pub struct Client {
    stream: std::net::TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends `request` and blocks for the matching response, returned as
    /// parsed JSON.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServeError::TruncatedFrame`] when the server
    /// hangs up mid-exchange.
    pub fn call(&mut self, request: &Request) -> Result<Value, ServeError> {
        self.call_raw(request.to_json().as_bytes())
    }

    /// Sends a raw payload (tests use this to exercise malformed input).
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn call_raw(&mut self, payload: &[u8]) -> Result<Value, ServeError> {
        write_frame(&mut self.stream, payload)?;
        if !read_frame(&mut self.stream, &mut self.buf)? {
            return Err(ServeError::TruncatedFrame { got: 0, want: 4 });
        }
        let text = std::str::from_utf8(&self.buf)
            .map_err(|e| ServeError::InvalidJson(format!("response not UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| ServeError::InvalidJson(format!("{e}")))
    }

    /// The raw bytes of the last response frame (for byte-identity tests).
    pub fn last_frame(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"id\":1}").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"{\"id\":1}");
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert!(buf.is_empty());
        assert!(!read_frame(&mut r, &mut buf).unwrap(), "clean EOF");
    }

    #[test]
    fn truncated_prefix_and_payload_are_typed_errors() {
        let mut buf = Vec::new();
        // Two bytes of a four-byte prefix.
        let mut r: &[u8] = &[0u8, 0u8];
        match read_frame(&mut r, &mut buf) {
            Err(ServeError::TruncatedFrame { got: 2, want: 4 }) => {}
            other => panic!("expected truncated prefix, got {other:?}"),
        }
        // Prefix promises 8 bytes, stream carries 3.
        let mut wire = 8u32.to_be_bytes().to_vec();
        wire.extend_from_slice(b"abc");
        let mut r = wire.as_slice();
        match read_frame(&mut r, &mut buf) {
            Err(ServeError::TruncatedFrame { want: 8, .. }) => {}
            other => panic!("expected truncated payload, got {other:?}"),
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let wire = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes();
        let mut r = wire.as_slice();
        let mut buf = Vec::new();
        match read_frame(&mut r, &mut buf) {
            Err(ServeError::FrameTooLarge { len, max }) => {
                assert_eq!(len, MAX_FRAME_BYTES + 1);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        assert!(buf.is_empty(), "no payload buffer was grown");
    }

    #[test]
    fn requests_round_trip_through_their_wire_form() {
        let cases = [
            Request {
                id: 9,
                kind: RequestKind::Ping,
            },
            Request {
                id: 10,
                kind: RequestKind::Stats,
            },
            Request {
                id: 11,
                kind: RequestKind::Query(Query {
                    algorithm: Algorithm::Extremes,
                    source: GraphSource::Scenario {
                        seed: 7,
                        n: Some(96),
                    },
                    no_cache: false,
                }),
            },
            Request {
                id: 12,
                kind: RequestKind::Query(Query {
                    algorithm: Algorithm::Eccentricity { node: 3 },
                    source: GraphSource::Explicit {
                        n: 4,
                        edges: vec![(0, 1, 2), (1, 2, 3), (2, 3, 4)],
                    },
                    no_cache: true,
                }),
            },
            Request {
                id: 13,
                kind: RequestKind::Query(Query {
                    algorithm: Algorithm::Replay,
                    source: GraphSource::Scenario { seed: 3, n: None },
                    no_cache: false,
                }),
            },
            Request {
                id: 14,
                kind: RequestKind::Query(Query {
                    algorithm: Algorithm::Extremes,
                    source: GraphSource::File {
                        path: "/data/giant \"quoted\".wdrg".to_string(),
                    },
                    no_cache: false,
                }),
            },
        ];
        for req in cases {
            let parsed = Request::parse(req.to_json().as_bytes()).unwrap();
            assert_eq!(parsed, req);
        }
    }

    #[test]
    fn schema_violations_are_bad_requests_not_panics() {
        let bad = [
            "{}",
            r#"{"kind":"query"}"#,
            r#"{"kind":"launch_missiles"}"#,
            r#"{"kind":"query","algorithm":"diameter"}"#,
            r#"{"kind":"query","algorithm":"warp","scenario":1}"#,
            r#"{"kind":"query","algorithm":"eccentricity","scenario":1}"#,
            r#"{"kind":"query","algorithm":"diameter","scenario":1,"graph_edges":[]}"#,
            r#"{"kind":"query","algorithm":"diameter","graph_edges":[[0,1]]}"#,
            r#"{"kind":"query","algorithm":"replay","graph_n":2,"graph_edges":[[0,1,1]]}"#,
            r#"{"kind":"query","algorithm":"diameter","scenario":1,"no_cache":"yes"}"#,
            r#"{"kind":"query","algorithm":"diameter","scenario":-4}"#,
            r#"{"kind":"query","algorithm":"diameter","graph_file":7}"#,
            r#"{"kind":"query","algorithm":"diameter","scenario":1,"graph_file":"a.wdrg"}"#,
            r#"{"kind":"query","algorithm":"replay","graph_file":"a.wdrg"}"#,
        ];
        for text in bad {
            match Request::parse(text.as_bytes()) {
                Err(ServeError::BadRequest(_)) => {}
                other => panic!("{text}: expected BadRequest, got {other:?}"),
            }
        }
        match Request::parse(b"not json at all") {
            Err(ServeError::InvalidJson(_)) => {}
            other => panic!("expected InvalidJson, got {other:?}"),
        }
        match Request::parse(&[0xff, 0xfe, 0x00]) {
            Err(ServeError::InvalidJson(_)) => {}
            other => panic!("expected InvalidJson for non-UTF-8, got {other:?}"),
        }
    }

    #[test]
    fn responses_have_sorted_keys() {
        let ok = ok_response(5, true, "{\"diameter\":12}");
        assert_eq!(
            ok,
            "{\"cached\":true,\"id\":5,\"result\":{\"diameter\":12},\"status\":\"ok\"}"
        );
        let err = error_response(6, &ServeError::Overloaded { shard: 2 });
        assert!(err.contains("\"status\":\"rejected\""));
        assert!(err.contains("\"kind\":\"overloaded\""));
        let err = error_response(7, &ServeError::BadRequest("nope".into()));
        assert!(err.contains("\"status\":\"error\""));
        serde_json::from_str(&err).unwrap();
    }
}
