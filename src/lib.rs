//! # quantum-congest-wdr
//!
//! A full reproduction of *Wu & Yao, "Quantum Complexity of Weighted
//! Diameter and Radius in CONGEST Networks"* (PODC 2022) as a Rust
//! workspace. This facade crate re-exports the member crates and hosts the
//! runnable examples and cross-crate integration tests.
//!
//! | Crate | Contents |
//! |---|---|
//! | [`congest_graph`] | weighted graphs, shortest paths, `d̃^ℓ`, overlays, contraction, generators |
//! | [`congest_sim`] | the synchronous CONGEST simulator (rounds, bandwidth, message logs) |
//! | [`quantum_sim`] | statevector simulator, analytic Grover, BBHT, Dürr–Høyer |
//! | [`congest_algos`] | Nanongkai's Algorithms 1–5 as node programs + classical baselines |
//! | [`congest_wdr`] | **the paper's algorithm** (Theorem 1.1) + Table 1 cost models |
//! | [`congest_lb`] | Server model, gadgets, Lemma 4.1 simulation, approximate degree (Theorem 1.2) |
//!
//! # Quickstart
//!
//! ```
//! use quantum_congest_wdr::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let g = generators::erdos_renyi_connected(10, 0.35, 5, &mut rng);
//! let d = metrics::unweighted_diameter(&g);
//! let mut params = WdrParams::for_benchmarks(g.n(), d, 0.5);
//! params.ell = g.n();
//! params.r = 4.0;
//! let cfg = SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(100_000_000);
//! let report = quantum_weighted(&g, 0, Objective::Diameter, &params, &cfg, &mut rng)?;
//! assert!(report.estimate >= report.exact - 1e-9 || report.estimate > 0.0);
//! # Ok::<(), congest_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use congest_algos;
pub use congest_graph;
pub use congest_lb;
pub use congest_sim;
pub use congest_wdr;
pub use quantum_sim;

/// The most common imports, bundled.
pub mod prelude {
    pub use congest_graph::{generators, metrics, Dist, WeightedGraph};
    pub use congest_sim::{RoundStats, SimConfig, SimError};
    pub use congest_wdr::algorithm::{
        quantum_weighted, quantum_weighted_min_branch, Branch, Objective, WdrReport,
    };
    pub use congest_wdr::cost;
    pub use congest_wdr::params::WdrParams;
    pub use congest_wdr::unweighted::quantum_unweighted;
}
