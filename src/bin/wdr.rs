//! `wdr` — command-line front end for the workspace.
//!
//! ```text
//! wdr gen <family> <n> [--weights W] [--seed S]      emit an edge list
//! wdr info <file>                                    graph statistics
//! wdr estimate <file> [--radius] [--method M] [...]  diameter/radius
//! ```
//!
//! Graph files are whitespace-separated `u v w` lines (0-based node ids,
//! positive integer weights); `#` starts a comment.

use congest_algos::baselines::{diameter_radius_exact, two_approx_diameter_radius, WeightMode};
use congest_algos::three_halves::three_halves_diameter;
use congest_graph::{generators, metrics, WeightedGraph};
use congest_sim::SimConfig;
use congest_wdr::algorithm::{quantum_weighted, Objective};
use congest_wdr::params::WdrParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("sssp") => cmd_sssp(&args[1..]),
        Some("table1") => cmd_table1(&args[1..]),
        // Ablation harness: `wdr ablate` is the same entry point as the
        // standalone `wdr-ablate` binary (exit codes: 0 pass, 1 tolerance
        // violation / report drift, 2 usage).
        Some("ablate") => return wdr_ablate::cli_main(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  wdr gen <path|cycle|grid|tree|er|cluster> <n> [--weights W] [--seed S]
  wdr info <file>
  wdr estimate <file> [--radius] [--method quantum|exact|two-approx|three-halves]
               [--seed S] [--eps X] [--leader V]
  wdr sssp <file> <source> [--eps X] [--seed S]
  wdr table1 [--n N] [--d D]
  wdr ablate <run|check|render> --plan <file.ron> [--seed S] [--lanes L]
             [--out FILE] [--against FILE] [--format md|csv]";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let family = args.first().ok_or(USAGE)?;
    let n: usize = args.get(1).ok_or(USAGE)?.parse().map_err(|_| "invalid n")?;
    let w: u64 = parse_flag(args, "--weights", 8)?;
    let seed: u64 = parse_flag(args, "--seed", 1)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = match family.as_str() {
        "path" => generators::randomize_weights(&generators::path(n, 1), w, &mut rng),
        "cycle" => generators::randomize_weights(&generators::cycle(n.max(3), 1), w, &mut rng),
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            generators::randomize_weights(&generators::grid(side, side, 1), w, &mut rng)
        }
        "tree" => generators::random_tree(n, w, &mut rng),
        "er" => generators::erdos_renyi_connected(n, 3.0 / n as f64, w, &mut rng),
        "cluster" => generators::cluster_ring(n, 4.min(n / 2).max(1), w, &mut rng),
        other => return Err(format!("unknown family {other}")),
    };
    println!("# {} n={} m={} W={}", family, g.n(), g.m(), g.max_weight());
    for e in g.edges() {
        println!("{} {} {}", e.u, e.v, e.w);
    }
    Ok(())
}

fn load(path: &str) -> Result<WeightedGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut edges = Vec::new();
    let mut max_node = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |s: Option<&str>| -> Result<u64, String> {
            s.ok_or_else(|| format!("line {}: expected 'u v w'", lineno + 1))?
                .parse()
                .map_err(|_| format!("line {}: invalid number", lineno + 1))
        };
        let u = parse(it.next())? as usize;
        let v = parse(it.next())? as usize;
        let w = parse(it.next())?;
        max_node = max_node.max(u).max(v);
        edges.push((u, v, w));
    }
    if edges.is_empty() {
        return Err("no edges in input".into());
    }
    WeightedGraph::from_edges(max_node + 1, edges).map_err(|e| e.to_string())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let g = load(args.first().ok_or(USAGE)?)?;
    println!("nodes          : {}", g.n());
    println!("edges          : {}", g.m());
    println!("max weight W   : {}", g.max_weight());
    println!("connected      : {}", g.is_connected());
    if g.is_connected() {
        let exact = metrics::extremes(&g);
        println!("unweighted D   : {}", metrics::unweighted_diameter(&g));
        println!("weighted D     : {}", exact.diameter);
        println!("weighted R     : {}", exact.radius);
        println!("hop diameter   : {}", metrics::hop_diameter(&g));
    }
    Ok(())
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let g = load(args.first().ok_or(USAGE)?)?;
    if !g.is_connected() {
        return Err("graph must be connected (it is the communication network)".into());
    }
    let radius = args.iter().any(|a| a == "--radius");
    let method = flag(args, "--method").unwrap_or_else(|| "quantum".into());
    let seed: u64 = parse_flag(args, "--seed", 7)?;
    let eps: f64 = parse_flag(args, "--eps", 0.25)?;
    let leader: usize = parse_flag(args, "--leader", 0)?;
    if leader >= g.n() {
        return Err("leader out of range".into());
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cfg = SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(2_000_000_000);
    let objective = if radius {
        Objective::Radius
    } else {
        Objective::Diameter
    };
    let what = if radius { "radius" } else { "diameter" };
    match method.as_str() {
        "quantum" => {
            let d = metrics::unweighted_diameter(&g).max(1);
            let params = WdrParams::for_benchmarks(g.n(), d, eps);
            let rep = quantum_weighted(&g, leader, objective, &params, &cfg, &mut rng)
                .map_err(|e| e.to_string())?;
            println!("method          : quantum (Wu–Yao Theorem 1.1)");
            println!("{what} estimate : {:.1}", rep.estimate);
            println!("exact {what}    : {}", rep.exact);
            println!(
                "charged rounds  : {} (adaptive) / {} (budgeted)",
                rep.total_rounds, rep.budgeted_rounds
            );
            println!(
                "phase costs     : T0={} T1={} T2={}",
                rep.t0, rep.t1, rep.t2
            );
        }
        "exact" => {
            let (d, r, stats) = diameter_radius_exact(&g, leader, &cfg, WeightMode::Weighted)
                .map_err(|e| e.to_string())?;
            println!("method          : classical exact APSP");
            println!("{what}          : {}", if radius { r } else { d });
            println!("rounds          : {}", stats.rounds);
        }
        "two-approx" => {
            let (d, r, stats) =
                two_approx_diameter_radius(&g, leader, &cfg).map_err(|e| e.to_string())?;
            println!("method          : classical 2-approximation (single SSSP)");
            println!("{what} estimate : {}", if radius { r } else { d });
            println!("rounds          : {}", stats.rounds);
        }
        "three-halves" => {
            let res =
                three_halves_diameter(&g, leader, &cfg, &mut rng).map_err(|e| e.to_string())?;
            println!("method          : classical 3/2-approximation (unweighted)");
            let est = if radius {
                res.radius_estimate
            } else {
                res.diameter_estimate
            };
            println!("{what} estimate : {est}");
            println!("rounds          : {}", res.stats.rounds);
        }
        other => return Err(format!("unknown method {other}")),
    }
    Ok(())
}

fn cmd_sssp(args: &[String]) -> Result<(), String> {
    let g = load(args.first().ok_or(USAGE)?)?;
    if !g.is_connected() {
        return Err("graph must be connected".into());
    }
    let source: usize = args
        .get(1)
        .ok_or(USAGE)?
        .parse()
        .map_err(|_| "invalid source")?;
    if source >= g.n() {
        return Err("source out of range".into());
    }
    let eps: f64 = parse_flag(args, "--eps", 0.25)?;
    let seed: u64 = parse_flag(args, "--seed", 7)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cfg = SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(2_000_000_000);
    let res = congest_algos::sssp::approx_sssp(&g, 0, source, eps, &cfg, &mut rng)
        .map_err(|e| e.to_string())?;
    println!(
        "# (1+ε)²-approximate distances from {source} (ε = {eps}); rounds = {}",
        res.stats.rounds
    );
    println!("# node  approx_distance");
    for (v, d) in res.dist.iter().enumerate() {
        println!("{v} {d:.2}");
    }
    Ok(())
}

fn cmd_table1(args: &[String]) -> Result<(), String> {
    let n: usize = parse_flag(args, "--n", 1usize << 20)?;
    let d: usize = parse_flag(args, "--d", 20)?;
    println!("Table 1 (Wu–Yao PODC 2022) evaluated at n = {n}, D = {d} (★ = this work):\n");
    print!("{}", congest_wdr::table_one::to_markdown(n, d));
    Ok(())
}
