//! The Table 1 landscape on one instance family: quantum unweighted
//! (√n·D-style), quantum weighted (Theorem 1.1), and the classical exact
//! baseline (Θ̃(n)), at a few sizes — the separation the paper is about.
//!
//! ```sh
//! cargo run --release --example weighted_vs_unweighted
//! ```

use congest_algos::baselines::{diameter_radius_exact, WeightMode};
use quantum_congest_wdr::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), SimError> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    println!(
        "{:>5} {:>4} | {:>14} {:>14} {:>14} | {:>10} {:>10}",
        "n", "D", "q-unweighted", "q-weighted", "classical", "model-qw", "model-cl"
    );
    println!("{}", "-".repeat(95));
    for &n in &[24usize, 40, 56] {
        // Cluster topology: D stays small as n grows.
        let g = generators::cluster_ring(n, 4, 8, &mut rng);
        let d = metrics::unweighted_diameter(&g);
        let cfg = SimConfig::standard(n, g.max_weight()).with_max_rounds(500_000_000);

        let uw = quantum_unweighted(&g, 0, Objective::Diameter, 0.05, &cfg, &mut rng)?;
        assert_eq!(uw.estimate, uw.exact, "unweighted evaluation is exact");

        let mut params = WdrParams::for_benchmarks(n, d, 0.25);
        params.ell = params.ell.min(4 * n);
        let qw = quantum_weighted(&g, 0, Objective::Diameter, &params, &cfg, &mut rng)?;

        let (_, _, cl) = diameter_radius_exact(&g, 0, &cfg, WeightMode::Weighted)?;

        println!(
            "{:>5} {:>4} | {:>14} {:>14} {:>14} | {:>10.0} {:>10.0}",
            n,
            d,
            uw.total_rounds,
            qw.total_rounds,
            cl.rounds,
            cost::quantum_weighted_upper(n, d, cost::Polylog::Drop),
            cost::classical_tight(n, cost::Polylog::Drop),
        );
    }
    println!(
        "\nNote: at simulatable sizes the quantum algorithms' polylog constants dominate\n\
         (see EXPERIMENTS.md); the reproducible claim is the *growth shape* — the\n\
         quantum-weighted column grows like n^0.9·D^0.3 while the classical column\n\
         grows like n (and the unweighted quantum column like √n·D)."
    );
    Ok(())
}
