//! Regenerates the paper's Figures 1–4 as Graphviz DOT files plus verified
//! structural properties: the base tree-and-paths network (Fig. 1), the
//! weighted diameter gadget (Fig. 2), its weight-1 contraction (Fig. 3),
//! and the radius gadget with the extra center candidate `a₀` (Fig. 4).
//!
//! ```sh
//! cargo run --release --example gadget_zoo [out_dir]
//! ```

use congest_graph::{contract, dot, metrics};
use congest_lb::formulas::GadgetDims;
use congest_lb::gadget::{diameter_gadget, node_count, paper_weights, radius_gadget, GadgetNode};
use std::fs;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/figures".into())
        .into();
    fs::create_dir_all(&out)?;
    let dims = GadgetDims::new(2);
    let (alpha, beta) = paper_weights(&dims);
    let x = vec![true; dims.input_len()];
    let mut y = vec![true; dims.input_len()];
    y[0] = false; // make the weights visibly non-uniform

    // Figure 2 (which contains Figure 1 as its V_S part).
    let g = diameter_gadget(&dims, &x, &y, alpha, beta);
    println!(
        "Figure 2 gadget: n = {} (formula {}), m = {}, D_G = {}",
        g.graph.n(),
        node_count(&dims, false),
        g.graph.m(),
        metrics::unweighted_diameter(&g.graph)
    );
    let labels: Vec<(usize, String)> = (0..g.graph.n())
        .map(|v| (v, format!("{:?}", g.layout.kind(v))))
        .collect();
    let opts = dot::DotOptions {
        name: "figure2_diameter_gadget".into(),
        labels,
        show_weights: true,
    };
    fs::write(
        out.join("figure2_diameter_gadget.dot"),
        dot::to_dot(&g.graph, &opts),
    )?;

    // Figure 1: the server part alone (tree + paths + leaf edges).
    let keep: Vec<bool> = (0..g.graph.n())
        .map(|v| {
            matches!(
                g.layout.kind(v),
                GadgetNode::Tree { .. } | GadgetNode::Path { .. }
            )
        })
        .collect();
    let fig1 = g.graph.induced_subgraph(&keep);
    fs::write(
        out.join("figure1_base_network.dot"),
        dot::to_dot(&fig1, &dot::DotOptions::named("figure1_base_network")),
    )?;
    println!(
        "Figure 1 base network: tree of height {} + {} paths of {} nodes",
        dims.h,
        2 * dims.s + dims.ell,
        1 << dims.h
    );

    // Figure 3: the contraction.
    let c = contract::contract_unit_edges(&g.graph);
    println!(
        "Figure 3 contraction: {} nodes (expected 1 + {} + {})",
        c.graph.n(),
        2 * dims.s + dims.ell,
        2 * dims.blocks()
    );
    fs::write(
        out.join("figure3_contracted.dot"),
        dot::to_dot(&c.graph, &dot::DotOptions::named("figure3_contracted")),
    )?;

    // Figure 4: the radius gadget.
    let r = radius_gadget(&dims, &x, &y, alpha, beta);
    let a0 = r.layout.id(GadgetNode::AZero);
    println!(
        "Figure 4 radius gadget: n = {}, a₀ = node {a0} with degree {}",
        r.graph.n(),
        r.graph.degree(a0)
    );
    fs::write(
        out.join("figure4_radius_gadget.dot"),
        dot::to_dot(&r.graph, &dot::DotOptions::named("figure4_radius_gadget")),
    )?;

    println!("\nwrote 4 DOT files to {}", out.display());
    Ok(())
}
