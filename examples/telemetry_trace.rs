//! Telemetry walkthrough: run the classical 3/2-approximation with a
//! `JsonlTracer` attached, then rebuild and print the phase tree from the
//! trace — the same pipeline the `wdr-trace` binary runs on a saved file.
//!
//! ```sh
//! cargo run --example telemetry_trace
//! # then render the written file with the report tool:
//! cargo run -p wdr-bench --bin wdr-trace -- target/telemetry_trace.jsonl
//! ```

use quantum_congest_wdr::congest_algos::three_halves::three_halves_diameter;
use quantum_congest_wdr::congest_graph::generators;
use quantum_congest_wdr::congest_sim::telemetry::{
    build_phase_tree, CollectingTracer, JsonlTracer,
};
use quantum_congest_wdr::congest_sim::{SimConfig, Telemetry};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::Path;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = generators::erdos_renyi_connected(30, 0.12, 4, &mut rng);

    // Two sinks on one run: a collector for in-process inspection and a
    // JSONL writer producing the interchange file for `wdr-trace`.
    let path = Path::new("target/telemetry_trace.jsonl");
    std::fs::create_dir_all("target")?;
    let collector = Arc::new(CollectingTracer::default());
    let jsonl = Arc::new(JsonlTracer::create(path)?);

    // First pass: collect events in memory and print the phase tree.
    let cfg = SimConfig::standard(g.n(), g.max_weight())
        .with_telemetry(Telemetry::new(collector.clone()))
        .with_channel_profile();
    let res = three_halves_diameter(&g, 0, &cfg, &mut rng)?;
    println!(
        "3/2-approx diameter estimate: {} in {} rounds\n",
        res.diameter_estimate, res.stats.rounds
    );

    println!("phase tree (rounds / messages):");
    let tree = build_phase_tree(&collector.events());
    for (depth, node) in tree.walk().into_iter().skip(1) {
        let sub = node.subtree();
        println!(
            "{}{:<24} {:>6} rounds {:>8} msgs",
            "  ".repeat(depth - 1),
            node.name,
            sub.rounds,
            sub.messages
        );
    }

    // Second pass: same run written as JSONL for offline rendering.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = generators::erdos_renyi_connected(30, 0.12, 4, &mut rng);
    let telemetry = Telemetry::new(jsonl);
    let cfg = SimConfig::standard(g.n(), g.max_weight())
        .with_telemetry(telemetry.clone())
        .with_channel_profile();
    three_halves_diameter(&g, 0, &cfg, &mut rng)?;
    telemetry.flush();
    println!("\ntrace written to {}", path.display());
    Ok(())
}
