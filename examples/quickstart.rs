//! Quickstart: approximate the weighted diameter and radius of a random
//! network with the paper's quantum CONGEST algorithm (Theorem 1.1) and
//! compare against the exact classical baseline.
//!
//! ```sh
//! cargo run --release --example quickstart [seed]
//! ```

use congest_algos::baselines::{diameter_radius_exact, WeightMode};
use quantum_congest_wdr::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), SimError> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // A connected random network with weights in [1, 12].
    let n = 40;
    let g = generators::erdos_renyi_connected(n, 0.10, 12, &mut rng);
    let d_unweighted = metrics::unweighted_diameter(&g);
    println!(
        "network: n = {n}, m = {}, W = {}, D (unweighted) = {d_unweighted}",
        g.m(),
        g.max_weight()
    );

    let mut params = WdrParams::for_benchmarks(n, d_unweighted, 0.25);
    // On a 40-node toy instance the asymptotic ℓ is overkill; any ℓ ≥ n is
    // a superset of every shortest path's hop count.
    params.ell = n;
    let cfg = SimConfig::standard(n, g.max_weight()).with_max_rounds(500_000_000);

    println!(
        "\nparameters (Eq. (1) shape): ε = {:.3}, r = {:.1}, ℓ = {}, k = {}",
        params.eps, params.r, params.ell, params.k
    );

    for objective in [Objective::Diameter, Objective::Radius] {
        let report = quantum_weighted(&g, 0, objective, &params, &cfg, &mut rng)?;
        let name = match objective {
            Objective::Diameter => "diameter",
            Objective::Radius => "radius",
        };
        println!("\nquantum weighted {name}:");
        println!(
            "  estimate        = {:.1}  (exact {})",
            report.estimate, report.exact
        );
        println!(
            "  ratio           = {:.4}  (guarantee ≤ (1+ε)² = {:.4})",
            report.estimate / report.exact,
            (1.0 + params.eps) * (1.0 + params.eps)
        );
        println!("  charged rounds  = {}", report.total_rounds);
        println!(
            "  phase costs     : T₀ = {}, T₁ = {}, T₂ = {}, outer setup = {}",
            report.t0, report.t1, report.t2, report.t_setup_outer
        );
        println!(
            "  quantum searches: outer {} Grover iterations / {} measurements, inner budget {}",
            report.outer_trace.grover_iterations,
            report.outer_trace.measurements,
            report.inner_budget
        );
        println!(
            "  Lemma 3.4 check : {} of {} non-empty sets are marked",
            report.marked_sets, report.nonempty_sets
        );
    }

    // The classical Θ̃(n) reference: exact APSP + convergecast.
    let (d_exact, r_exact, stats) = diameter_radius_exact(&g, 0, &cfg, WeightMode::Weighted)?;
    println!(
        "\nclassical exact baseline: D = {d_exact}, R = {r_exact}, rounds = {}",
        stats.rounds
    );
    println!(
        "\nTable 1 models at this size: quantum Õ(min{{n^0.9 D^0.3, n}}) = {:.0}, classical Θ̃(n) = {:.0}",
        cost::quantum_weighted_upper(n, d_unweighted, cost::Polylog::Drop),
        cost::classical_tight(n, cost::Polylog::Drop),
    );
    Ok(())
}
