//! A guided tour of the Server model (paper Section 2.3) and the
//! Lemma 4.1 ownership frontier: watch Alice's and Bob's regions swallow
//! the paths from both ends, one position per round, while the server's
//! shrinking middle does all the free talking.
//!
//! ```sh
//! cargo run --release --example server_model_sim
//! ```

use congest_lb::formulas::GadgetDims;
use congest_lb::gadget::{GadgetLayout, GadgetNode, Party};
use congest_lb::server::ServerSession;

fn main() {
    // 1. The model itself: the server relays for free.
    let mut session = ServerSession::new();
    // Alice forwards a 16-bit query to Bob through the server.
    session.send(Party::Alice, 16);
    session.send(Party::Server, 16); // relay: free
                                     // Bob answers with one bit.
    session.send(Party::Bob, 1);
    session.send(Party::Server, 1); // relay: free
    println!(
        "Server-model session: {} messages on the transcript, cost = {} messages / {} bits",
        session.transcript().len(),
        session.cost().messages,
        session.cost().bits
    );
    assert_eq!(session.cost().messages, 2);

    // 2. The ownership frontier on a Figure 1/2 gadget, drawn per round.
    let dims = GadgetDims::new(4);
    println!(
        "\nownership of path 1 over rounds (h = {}, path length 2^h = {}):",
        dims.h,
        1 << dims.h
    );
    println!("  legend: A = Alice, · = server, B = Bob   (Lemma 4.1 frontier)");
    // Build only the layout — the frontier is a property of the schedule.
    let ones = vec![true; dims.input_len()];
    let g = congest_lb::gadget::diameter_gadget(&dims, &ones, &ones, 1000, 2000);
    let layout: &GadgetLayout = &g.layout;
    let width = 1u32 << dims.h;
    let horizon = width / 2;
    for r in 0..horizon {
        let mut row = String::new();
        for j in 1..=width {
            let v = layout.id(GadgetNode::Path { path: 1, j });
            row.push(match layout.owner_at(v, r) {
                Party::Alice => 'A',
                Party::Server => '·',
                Party::Bob => 'B',
            });
        }
        println!("  round {r:>2}: {row}");
    }
    println!("\ntree ownership at the last valid round (per level):");
    let r = horizon - 1;
    for depth in 0..=dims.h {
        let mut row = String::new();
        for j in 1..=(1u32 << depth) {
            let v = layout.id(GadgetNode::Tree { depth, j });
            row.push(match layout.owner_at(v, r) {
                Party::Alice => 'A',
                Party::Server => '·',
                Party::Bob => 'B',
            });
        }
        println!("  depth {depth}: {row}");
    }
    println!(
        "\nThe frontier advances one path position per round from each side, so a\n\
        T-round algorithm with T < 2^h/2 never lets the players' regions meet:\n\
        the server can keep simulating the middle for free, and only the O(h)\n\
        tree nodes per round on the frontier need charged messages — the\n\
        O(T·h·B) of Lemma 4.1."
    );
}
