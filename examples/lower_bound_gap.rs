//! The lower-bound pipeline of Theorem 4.2, executed end to end on a real
//! gadget: build Figure 2 from random inputs, verify the Lemma 4.4 gap,
//! replay a real CONGEST execution through the Lemma 4.1 ownership
//! schedule, and print the composed `Ω̃(n^{2/3})` curve.
//!
//! ```sh
//! cargo run --release --example lower_bound_gap
//! ```

use congest_algos::bounded_sssp::bounded_distance_sssp;
use congest_graph::metrics;
use congest_lb::formulas::{f_diameter, GadgetDims};
use congest_lb::gadget::{diameter_gadget, paper_weights, GadgetNode};
use congest_lb::reduction::{measured_bound, reduction_point, threshold_decision};
use congest_lb::server::simulate_transcript;
use congest_sim::SimConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let dims = GadgetDims::new(2);
    let (alpha, beta) = paper_weights(&dims);
    println!(
        "gadget dims: h = {}, s = {}, ℓ = {} → inputs of {} bits, α = {alpha}, β = {beta}",
        dims.h,
        dims.s,
        dims.ell,
        dims.input_len()
    );

    // 1. The diameter gap (Lemma 4.4) on random inputs.
    println!("\nLemma 4.4 gap (5 random input pairs):");
    for t in 0..5 {
        let x: Vec<bool> = (0..dims.input_len()).map(|_| rng.gen_bool(0.7)).collect();
        let y: Vec<bool> = (0..dims.input_len()).map(|_| rng.gen_bool(0.7)).collect();
        let g = diameter_gadget(&dims, &x, &y, alpha, beta);
        let d = metrics::diameter(&g.graph).expect_finite();
        let f = f_diameter(&dims, &x, &y);
        let decided = threshold_decision(g.graph.n(), 1.4 * d as f64);
        println!(
            "  trial {t}: F(x,y) = {}, D_{{G,w}} = {d:>6}, (3/2−ε)-approx decides F = {}",
            u8::from(f),
            u8::from(decided)
        );
        assert_eq!(
            f, decided,
            "the gap must be decodable from any (3/2−ε)-approximation"
        );
    }

    // 2. Lemma 4.1, measured: a real protocol on the gadget, replayed
    //    against the Alice/server/Bob ownership schedule.
    let ones = vec![true; dims.input_len()];
    let g = diameter_gadget(&dims, &ones, &ones, alpha, beta);
    let u = g.graph.unweighted_view();
    let root = g.layout.id(GadgetNode::Tree { depth: 0, j: 1 });
    let cfg = SimConfig::standard(u.n(), 1).with_message_log();
    let limit = ((1u64 << dims.h) / 2).saturating_sub(2).max(1);
    let (_, stats) = bounded_distance_sssp(&u, root, root, limit, &cfg).expect("sim ok");
    let report = simulate_transcript(&g.layout, &stats.message_log);
    println!(
        "\nLemma 4.1 simulation of a {}-round protocol on the gadget (n = {}):",
        report.rounds,
        g.graph.n()
    );
    println!("  total messages in the CONGEST run : {}", stats.messages);
    println!(
        "  messages charged to Alice/Bob     : {} ({} bits)",
        report.cost.messages, report.cost.bits
    );
    println!(
        "  per-round cap 2h = {}, observed max = {}",
        report.per_round_cap,
        report.per_round.iter().max().unwrap_or(&0)
    );
    println!(
        "  O(T·h·B) budget (B = 64)          : {} bits",
        report.bound_bits(dims.h, 64)
    );

    // 3. The composed Ω̃(n^{2/3}) curve vs the measured degree constant.
    println!("\ncomposed lower bound (Theorem 4.2 final calculation):");
    println!(
        "{:>3} {:>9} {:>12} {:>12} {:>14}",
        "h", "n", "√(2^s·ℓ)", "T ≥ ⋯", "n^⅔/log²n"
    );
    for h in [2u32, 4, 6, 8, 10, 12] {
        let p = reduction_point(h);
        println!(
            "{:>3} {:>9} {:>12.0} {:>12.1} {:>14.1}",
            p.h, p.n, p.communication, p.rounds, p.n_two_thirds_over_log2
        );
    }
    let (c, bound) = measured_bound(&GadgetDims::new(4), &[4, 9, 16, 25]);
    println!("\nmeasured deg_{{1/3}}(OR_k) ≈ {c:.2}·√k  ⇒  Q^sv(F′) ≥ {bound:.0} at h = 4");
}
